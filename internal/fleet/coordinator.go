package fleet

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/journal"
	"repro/internal/retry"
	"repro/internal/telemetry"
	"repro/rvpredict"
	"repro/trace"
)

// ErrInjectedCrash is returned by Coordinator.Run when an in-process
// coord_crash fault aborted the run after the triggering result was
// durably journaled. A new coordinator over the same journal resumes
// without losing any acked window.
var ErrInjectedCrash = errors.New("fleet: injected coordinator crash")

// CoordinatorOptions configures a Coordinator.
type CoordinatorOptions struct {
	// Detect is the detection configuration the fleet executes.
	// TraceReader must be set (every worker opens the same chunked
	// trace); Journal, Resume and Shards are owned by the coordinator
	// and must be unset.
	Detect rvpredict.Options
	// Journal is the coordinator's durable window journal (required).
	// Every accepted result is appended and fsynced here before the
	// worker is acked; a killed coordinator resumes from it.
	Journal string
	// Shards is the number of lease partitions (window index mod
	// Shards), the unit of work a lease covers. Default 4.
	Shards int
	// LeaseTTL is how long a lease lives without a heartbeat before its
	// shard is reassigned (default 10s).
	LeaseTTL time.Duration
	// SpeculateAfter is the lease age past which an idle worker may be
	// granted a speculative duplicate lease on a still-leased shard —
	// the straggler hedge; the first valid result per window wins
	// (default LeaseTTL).
	SpeculateAfter time.Duration
	// IdleGrace is how long the coordinator tolerates an empty fleet
	// (no workers, no live leases, windows still missing) before
	// degrading to local analysis of the uncovered windows (default 2s).
	IdleGrace time.Duration
	// ShutdownLinger bounds the wait for connected workers to drain
	// through their shutdown handshake once all windows are durable
	// (default 5s); stragglers past it are disconnected.
	ShutdownLinger time.Duration
	// Backoff is the reassignment schedule for expired or disconnected
	// leases (defaults: internal/retry's).
	Backoff retry.Policy
	// Collector receives the fleet telemetry (lease and speculative
	// counters) and the merge-time shard counters. A fresh collector is
	// created when nil.
	Collector *telemetry.Collector
	// FaultInjector arms the coordinator's coord_crash point. Test-only.
	FaultInjector *faultinject.Injector
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// lease is one live shard lease.
type lease struct {
	id          uint64
	shard       int
	conn        net.Conn
	deadline    time.Time
	granted     time.Time
	speculative bool
}

// Coordinator owns the fleet run: the window journal, the lease table
// and the final merge.
type Coordinator struct {
	opt CoordinatorOptions
	col *telemetry.Collector
	inj *faultinject.Injector
	fp  journal.Fingerprint

	numWindows   int
	shardWindows [][]int // shard → its window indices

	mu           sync.Mutex
	jw           *journal.Writer
	done         map[int]bool
	doneCount    int
	leases       map[uint64]*lease
	nextLeaseID  uint64
	shardLive    []int // live lease count per shard
	shardDone    []bool
	attempts     []int // consecutive failed leases per shard, for backoff
	notBefore    []time.Time
	workers      int
	lastActivity time.Time
	draining     bool
	crashed      error

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewCoordinator validates opt, opens (or resumes) the coordinator
// journal, and indexes the trace's windows. The returned coordinator is
// ready to Run.
func NewCoordinator(opt CoordinatorOptions) (*Coordinator, error) {
	if opt.Detect.TraceReader == nil {
		return nil, fmt.Errorf("fleet: CoordinatorOptions.Detect.TraceReader is required")
	}
	if opt.Journal == "" {
		return nil, fmt.Errorf("fleet: CoordinatorOptions.Journal is required")
	}
	if opt.Detect.Journal != "" || opt.Detect.Resume || opt.Detect.Shards != 0 {
		return nil, fmt.Errorf("fleet: Detect.Journal/Resume/Shards are owned by the coordinator; leave them unset")
	}
	if err := opt.Detect.Validate(); err != nil {
		return nil, err
	}
	if opt.Shards <= 0 {
		opt.Shards = 4
	}
	if opt.LeaseTTL <= 0 {
		opt.LeaseTTL = 10 * time.Second
	}
	if opt.SpeculateAfter <= 0 {
		opt.SpeculateAfter = opt.LeaseTTL
	}
	if opt.IdleGrace <= 0 {
		opt.IdleGrace = 2 * time.Second
	}
	if opt.ShutdownLinger <= 0 {
		opt.ShutdownLinger = 5 * time.Second
	}
	col := opt.Collector
	if col == nil {
		col = telemetry.NewCollector()
	}
	rd := opt.Detect.TraceReader
	c := &Coordinator{
		opt:    opt,
		col:    col,
		inj:    opt.FaultInjector,
		fp:     journalFingerprint(rd.ContentHash(), opt.Detect.ResultFingerprint()),
		done:   make(map[int]bool),
		leases: make(map[uint64]*lease),
	}

	// Index the windows once: the lease table needs to know which
	// windows each shard owns and when a shard (and the run) is
	// complete.
	ws := opt.Detect.Normalised().WindowSize
	c.shardWindows = make([][]int, opt.Shards)
	err := rd.Windows(ws, func(_ *trace.Trace, widx, _ int) error {
		s := widx % opt.Shards
		c.shardWindows[s] = append(c.shardWindows[s], widx)
		c.numWindows++
		return nil
	})
	if err != nil {
		return nil, err
	}
	c.shardLive = make([]int, opt.Shards)
	c.shardDone = make([]bool, opt.Shards)
	c.attempts = make([]int, opt.Shards)
	c.notBefore = make([]time.Time, opt.Shards)

	// Open the journal: resume an existing one (the crash-recovery
	// path — every previously acked window is recovered), create
	// otherwise. GroupCommit stays 0: every accepted result is fsynced
	// before its ack, the durability the protocol promises.
	jopt := journal.Options{Telemetry: col, FaultInjector: opt.FaultInjector}
	if _, statErr := os.Stat(opt.Journal); statErr == nil {
		jw, info, rerr := journal.Resume(opt.Journal, c.fp, jopt)
		if rerr != nil {
			return nil, rerr
		}
		c.jw = jw
		if info.TornTail {
			col.CountTornTailTruncated()
		}
		for _, out := range info.Outcomes {
			if !c.done[out.Window] {
				c.done[out.Window] = true
				c.doneCount++
			}
		}
	} else {
		jw, cerr := journal.Create(opt.Journal, c.fp, jopt)
		if cerr != nil {
			return nil, cerr
		}
		c.jw = jw
	}
	for s := range c.shardDone {
		c.shardDone[s] = c.shardCompleteLocked(s)
	}
	return c, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opt.Logf != nil {
		c.opt.Logf(format, args...)
	}
}

// Collector returns the coordinator's telemetry collector.
func (c *Coordinator) Collector() *telemetry.Collector { return c.col }

// shardCompleteLocked reports whether every window of shard s is
// durable.
func (c *Coordinator) shardCompleteLocked(s int) bool {
	for _, w := range c.shardWindows[s] {
		if !c.done[w] {
			return false
		}
	}
	return true
}

// Run serves the fleet on ln until every window is durable (or the
// fleet stays empty past IdleGrace), then merges the coordinator
// journal into the final report — analysing any windows no worker
// covered locally, so the report is always complete. The report is
// byte-identical to a single-process run over the same trace and
// options.
func (c *Coordinator) Run(ctx context.Context, ln net.Listener) (rvpredict.Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.ctx, c.cancel = context.WithCancel(ctx)
	defer c.cancel()
	c.mu.Lock()
	c.lastActivity = time.Now()
	c.mu.Unlock()

	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				c.handleConn(conn)
			}()
		}
	}()

	// The monitor drives lease expiry and decides when the run is over.
	drainStart := time.Time{}
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-c.ctx.Done():
		case <-tick.C:
		}
		c.mu.Lock()
		c.sweepLocked(time.Now())
		crashed := c.crashed
		allDone := c.doneCount == c.numWindows
		idle := c.workers == 0 && len(c.leases) == 0 &&
			time.Since(c.lastActivity) > c.opt.IdleGrace
		workers := c.workers
		if allDone {
			c.draining = true
		}
		c.mu.Unlock()

		switch {
		case crashed != nil:
			ln.Close()
			c.cancel()
			c.wg.Wait()
			c.jw.Close()
			return rvpredict.Report{}, crashed
		case c.ctx.Err() != nil:
			ln.Close()
			c.wg.Wait()
			c.jw.Close()
			return rvpredict.Report{}, ctx.Err()
		case allDone:
			// Linger so connected workers drain through their shutdown
			// handshake instead of seeing an abrupt close.
			if drainStart.IsZero() {
				drainStart = time.Now()
			}
			if workers == 0 || time.Since(drainStart) > c.opt.ShutdownLinger {
				return c.finish(ln)
			}
		case idle:
			c.mu.Lock()
			c.draining = true
			missing := c.numWindows - c.doneCount
			c.mu.Unlock()
			c.logf("fleet: no workers and %d windows uncovered; degrading to local analysis", missing)
			return c.finish(ln)
		}
	}
}

// finish closes the fleet and produces the report by merging the
// coordinator journal — rvpredict.MergeShards analyses any windows
// missing from it in-process, which is both the graceful-degradation
// path (fleet shrank to zero) and a no-op on a fully covered run.
func (c *Coordinator) finish(ln net.Listener) (rvpredict.Report, error) {
	ln.Close()
	c.cancel()
	c.wg.Wait()
	if err := c.jw.Close(); err != nil {
		return rvpredict.Report{}, err
	}
	det := c.opt.Detect
	det.Collector = c.col
	return rvpredict.MergeShards(context.Background(), det, []string{c.opt.Journal})
}

// sweepLocked expires leases whose deadline lapsed: the shard returns
// to the pending pool behind an exponential-backoff gate.
func (c *Coordinator) sweepLocked(now time.Time) {
	for id, l := range c.leases {
		if now.After(l.deadline) {
			c.col.CountLeaseExpired()
			c.logf("fleet: lease %d (shard %d) expired", id, l.shard)
			c.releaseLeaseLocked(id, true)
		}
	}
}

// releaseLeaseLocked removes a lease; backoff arms the reassignment
// gate (expiry and disconnect do, voluntary release does not).
func (c *Coordinator) releaseLeaseLocked(id uint64, backoff bool) {
	l := c.leases[id]
	if l == nil {
		return
	}
	delete(c.leases, id)
	c.shardLive[l.shard]--
	if backoff && !c.shardDone[l.shard] {
		c.attempts[l.shard]++
		c.notBefore[l.shard] = time.Now().Add(c.opt.Backoff.Delay(c.attempts[l.shard]))
	}
}

// grantLocked picks work for an idle worker: a pending shard first
// (past its backoff gate), then a speculative duplicate of the oldest
// straggling lease, else nothing.
func (c *Coordinator) grantLocked(conn net.Conn, now time.Time) []byte {
	c.sweepLocked(now)
	if c.draining || c.doneCount == c.numWindows {
		return []byte{msgShutdown}
	}
	pick, speculative := -1, false
	for s := 0; s < c.opt.Shards; s++ {
		if !c.shardDone[s] && c.shardLive[s] == 0 && !now.Before(c.notBefore[s]) {
			pick = s
			break
		}
	}
	if pick < 0 {
		// Speculative hedge: duplicate the oldest lease that has been
		// running past SpeculateAfter and is not already duplicated.
		var oldest time.Time
		for _, l := range c.leases {
			age := now.Sub(l.granted)
			if age < c.opt.SpeculateAfter || c.shardLive[l.shard] > 1 || l.conn == conn {
				continue
			}
			if pick < 0 || l.granted.Before(oldest) {
				pick, oldest = l.shard, l.granted
			}
		}
		speculative = pick >= 0
	}
	if pick < 0 {
		// Idle workers poll at the faster of the lease and speculation
		// cadences (bounded), so a hedge shows up promptly once a lease
		// ages past SpeculateAfter.
		wait := c.opt.LeaseTTL / 4
		if s := c.opt.SpeculateAfter / 4; s < wait {
			wait = s
		}
		if wait < 5*time.Millisecond {
			wait = 5 * time.Millisecond
		}
		if wait > time.Second {
			wait = time.Second
		}
		return uvarintPayload(msgNone, uint64(wait/time.Millisecond))
	}
	c.nextLeaseID++
	l := &lease{
		id:          c.nextLeaseID,
		shard:       pick,
		conn:        conn,
		deadline:    now.Add(c.opt.LeaseTTL),
		granted:     now,
		speculative: speculative,
	}
	c.leases[l.id] = l
	c.shardLive[pick]++
	c.col.CountLeaseGranted()
	if c.attempts[pick] > 0 && !speculative {
		c.col.CountLeaseReassigned()
	}
	c.logf("fleet: lease %d: shard %d/%d (speculative=%t)", l.id, pick, c.opt.Shards, speculative)
	return grantPayload(grant{
		leaseID:     l.id,
		shard:       pick,
		shards:      c.opt.Shards,
		ttlMS:       uint64(c.opt.LeaseTTL / time.Millisecond),
		speculative: speculative,
	})
}

// handleResult gates, journals and acks one reported window outcome.
// First valid result wins: a window already durable is acked and
// ignored, mirroring journal.RecoverShards' first-listed-wins rule. The
// ack is written only after the journal append has been fsynced.
func (c *Coordinator) handleResult(conn net.Conn, body []byte) ([]byte, error) {
	leaseID, window, enc, err := parseResult(body)
	if err != nil {
		c.logf("fleet: rejecting result: %v", err)
		return []byte{msgAck, ackRejected}, nil
	}
	out, err := journal.DecodeOutcome(enc)
	if err != nil || out.Window != window {
		c.logf("fleet: rejecting undecodable result for window %d: %v", window, err)
		return []byte{msgAck, ackRejected}, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if l := c.leases[leaseID]; l != nil && l.conn == conn {
		l.deadline = time.Now().Add(c.opt.LeaseTTL) // a result is liveness too
	}
	if !c.done[window] {
		if err := c.jw.Append(out); err != nil {
			c.crashed = fmt.Errorf("fleet: journal append: %w", err)
			return nil, c.crashed
		}
		c.done[window] = true
		c.doneCount++
		if l := c.leases[leaseID]; l != nil && l.speculative {
			c.col.CountSpeculativeWin()
		}
		// The result is durable (appended and fsynced) but unacked —
		// the exact instant coord_crash simulates dying at.
		switch c.inj.Fire(faultinject.PointCoordCrash) {
		case faultinject.FaultNone:
		case faultinject.FaultCrash, faultinject.FaultCrashTorn:
			faultinject.CrashNow()
		default:
			c.crashed = ErrInjectedCrash
			return nil, c.crashed
		}
	}
	return []byte{msgAck, ackOK}, nil
}

// handleConn runs one worker connection: handshake, then the
// request/reply message loop.
func (c *Coordinator) handleConn(conn net.Conn) {
	defer conn.Close()
	// Unblock any in-flight read when the coordinator stops.
	stop := context.AfterFunc(c.ctx, func() { conn.Close() })
	defer stop()
	br := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	conn.SetWriteDeadline(time.Now().Add(20 * time.Second))
	name, code, err := readHello(br, c.fp)
	if err != nil {
		writeReply(conn, code, err.Error())
		return
	}
	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		writeReply(conn, RejectDraining, "coordinator is draining")
		return
	}
	c.workers++
	c.lastActivity = time.Now()
	c.mu.Unlock()
	if werr := writeReply(conn, 0, ""); werr != nil {
		err = werr
	} else {
		c.logf("fleet: worker %q connected", name)
		err = c.serveWorker(conn, br)
	}
	c.mu.Lock()
	c.workers--
	c.lastActivity = time.Now()
	for id, l := range c.leases {
		if l.conn == conn {
			c.releaseLeaseLocked(id, true)
		}
	}
	if !errors.Is(err, errCleanShutdown) {
		c.col.CountWorkerDisconnect()
		c.logf("fleet: worker %q disconnected: %v", name, err)
	}
	c.mu.Unlock()
}

// errCleanShutdown marks a worker that left through the shutdown
// handshake, not a failure.
var errCleanShutdown = errors.New("fleet: worker shut down cleanly")

// readTimeout bounds one message gap on a worker connection. It is far
// larger than the lease TTL on purpose: a silent straggler must take
// the lease-expiry path (and maybe still win speculatively), not be
// forcibly disconnected.
func (c *Coordinator) readTimeout() time.Duration {
	t := 10 * c.opt.LeaseTTL
	if t < 30*time.Second {
		t = 30 * time.Second
	}
	return t
}

func (c *Coordinator) serveWorker(conn net.Conn, br *bufio.Reader) error {
	for {
		if c.ctx.Err() != nil {
			return c.ctx.Err()
		}
		conn.SetReadDeadline(time.Now().Add(c.readTimeout()))
		kind, body, err := readMsg(br)
		if err != nil {
			return err
		}
		c.mu.Lock()
		c.lastActivity = time.Now()
		c.mu.Unlock()
		var reply []byte
		switch kind {
		case msgReq:
			c.mu.Lock()
			reply = c.grantLocked(conn, time.Now())
			c.mu.Unlock()
		case msgHeartbeat:
			id, perr := parseUvarint(body)
			if perr != nil {
				return perr
			}
			c.mu.Lock()
			if l := c.leases[id]; l != nil && l.conn == conn {
				l.deadline = time.Now().Add(c.opt.LeaseTTL)
				reply = []byte{msgAck, ackOK}
			} else {
				// Expired or reassigned: the worker may keep computing
				// (it can still win speculatively) but must know its
				// lease is gone.
				reply = []byte{msgAck, ackRejected}
			}
			c.mu.Unlock()
		case msgResult:
			reply, err = c.handleResult(conn, body)
			if err != nil {
				return err
			}
		case msgShardDone:
			id, perr := parseUvarint(body)
			if perr != nil {
				return perr
			}
			c.mu.Lock()
			status := ackRejected
			if l := c.leases[id]; l != nil && l.conn == conn {
				if c.shardCompleteLocked(l.shard) {
					c.shardDone[l.shard] = true
					status = ackOK
				} else {
					// Some window was rejected (e.g. a corrupt result):
					// the shard goes back to the pool for re-analysis.
					c.logf("fleet: shard %d reported done but has missing windows; repooling", l.shard)
				}
				c.releaseLeaseLocked(id, status == ackRejected)
			}
			c.mu.Unlock()
			reply = []byte{msgAck, status}
		default:
			return fmt.Errorf("%w: unknown message 0x%02x", ErrProtocol, kind)
		}
		conn.SetWriteDeadline(time.Now().Add(20 * time.Second))
		if err := writeMsg(conn, reply); err != nil {
			return err
		}
		if len(reply) == 1 && reply[0] == msgShutdown {
			return errCleanShutdown
		}
	}
}
