package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/retry"
	"repro/internal/tracev2"
	"repro/rvpredict"
	"repro/trace"
)

// fleetFixture builds a trace with enough windows (at WindowSize 8) for
// a multi-shard fleet to give every shard real work — the same racy
// block shape rvpredict's shard tests use.
func fleetFixture() *trace.Trace {
	b := trace.NewBuilder()
	for i := 0; i < 6; i++ {
		l := trace.Loc(100 * (i + 1))
		x := trace.Addr(10 + 4*i)
		y := x + 1
		b.At(l+1).Write(1, x, 1)
		b.At(l+2).ReadV(2, x, 1)
		b.At(l+3).Write(1, y, 2)
		b.At(l+4).Write(2, y, 2)
		b.At(l + 5).Branch(1)
		b.At(l + 6).Branch(2)
		b.At(l + 5).Branch(1)
		b.At(l + 6).Branch(2)
	}
	return b.Trace()
}

// writeFixtureFile writes the fixture in the chunked format and returns
// its path; every party (coordinator, each worker, the baseline run)
// opens its own reader over it, as separate processes would.
func writeFixtureFile(t *testing.T, tr *trace.Trace) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.rvc2")
	var buf bytes.Buffer
	if err := tracev2.WriteTrace(&buf, tr, 16); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func openReader(t *testing.T, path string) *tracev2.Reader {
	t.Helper()
	r, err := tracev2.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func fleetOpts() rvpredict.Options {
	return rvpredict.Options{WindowSize: 8, Witness: true}
}

// normalise renders a report as JSON with the operational fields that
// legitimately differ between equivalent runs removed — the remainder
// must be byte-identical.
func normalise(t *testing.T, rep rvpredict.Report) string {
	t.Helper()
	rep.Elapsed = 0
	rep.Telemetry = nil
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// baseline runs the single-process reader analysis the fleet must
// reproduce byte-for-byte.
func baseline(t *testing.T, path string) string {
	t.Helper()
	opt := fleetOpts()
	opt.TraceReader = openReader(t, path)
	rep, err := rvpredict.Run(nil, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Races) == 0 {
		t.Fatal("fixture found no races")
	}
	return normalise(t, rep)
}

// testWorkerRetry is a fast reconnect schedule for in-process chaos.
func testWorkerRetry() retry.Policy {
	return retry.Policy{Min: time.Millisecond, Max: 20 * time.Millisecond, MaxAttempts: 200}
}

// startWorker launches one in-process worker and returns a channel
// carrying its exit error.
func startWorker(t *testing.T, addr, path, name string, inj *faultinject.Injector, hold func(int)) <-chan error {
	return startWorkerCtx(t, nil, addr, path, name, inj, hold)
}

func startWorkerCtx(t *testing.T, ctx context.Context, addr, path, name string, inj *faultinject.Injector, hold func(int)) <-chan error {
	t.Helper()
	opt := fleetOpts()
	opt.TraceReader = openReader(t, path)
	done := make(chan error, 1)
	go func() {
		done <- RunWorker(ctx, WorkerOptions{
			Addr:           addr,
			Detect:         opt,
			Name:           name,
			Retry:          testWorkerRetry(),
			FaultInjector:  inj,
			Logf:           t.Logf,
			testHoldWindow: hold,
		})
	}()
	return done
}

// TestFleetCleanIdentity: a fault-free 3-worker fleet reproduces the
// single-process report byte-for-byte, and the lease ledger balances.
func TestFleetCleanIdentity(t *testing.T) {
	tr := fleetFixture()
	path := writeFixtureFile(t, tr)
	want := baseline(t, path)

	copt := fleetOpts()
	copt.TraceReader = openReader(t, path)
	coord, err := NewCoordinator(CoordinatorOptions{
		Detect:   copt,
		Journal:  filepath.Join(t.TempDir(), "coord.journal"),
		Shards:   3,
		LeaseTTL: 2 * time.Second,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	var workers []<-chan error
	for _, name := range []string{"w0", "w1", "w2"} {
		workers = append(workers, startWorker(t, addr, path, name, nil, nil))
	}
	rep, err := coord.Run(nil, ln)
	if err != nil {
		t.Fatal(err)
	}
	for i, done := range workers {
		if werr := <-done; werr != nil {
			t.Errorf("worker %d: %v", i, werr)
		}
	}
	if got := normalise(t, rep); got != want {
		t.Errorf("fleet report differs from single-process run:\nfleet:  %s\nsingle: %s", got, want)
	}
	col := coord.Collector()
	if col.LeasesGranted() == 0 {
		t.Error("no leases granted")
	}
	if col.SpeculativeWins() != 0 || col.LeasesExpired() != 0 {
		t.Errorf("clean run counted chaos: speculative=%d expired=%d",
			col.SpeculativeWins(), col.LeasesExpired())
	}
}

// TestFleetChaosIdentity is the anchor invariant: with all four fault
// points injected — a worker crash mid-shard, suppressed heartbeats, a
// corrupted result, and a coordinator crash after an fsynced append —
// the fleet-merged report is byte-identical to the single-process run
// over the same chunked trace.
func TestFleetChaosIdentity(t *testing.T) {
	tr := fleetFixture()
	path := writeFixtureFile(t, tr)
	want := baseline(t, path)
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "coord.journal")

	newCoord := func(inj *faultinject.Injector) *Coordinator {
		copt := fleetOpts()
		copt.TraceReader = openReader(t, path)
		coord, err := NewCoordinator(CoordinatorOptions{
			Detect:         copt,
			Journal:        journalPath,
			Shards:         3,
			LeaseTTL:       150 * time.Millisecond,
			SpeculateAfter: 100 * time.Millisecond,
			Backoff:        retry.Policy{Min: time.Millisecond, Max: 10 * time.Millisecond},
			FaultInjector:  inj,
			Logf:           t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		return coord
	}

	// Coordinator #1 crashes (in-process: aborts) on its third accepted
	// result — after the append was fsynced, before the ack.
	coordInj := faultinject.New().Script(faultinject.PointCoordCrash, 2, faultinject.FaultPanic)
	coord1 := newCoord(coordInj)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()

	// Worker 0 crashes mid-shard on its second outcome; worker 1 has
	// every heartbeat suppressed (stalled lease); worker 2 corrupts its
	// first result after the CRC was computed.
	injs := []*faultinject.Injector{
		faultinject.New().Script(faultinject.PointWorkerCrash, 1, faultinject.FaultPanic),
		faultinject.New(),
		faultinject.New().Script(faultinject.PointResultCorrupt, 0, faultinject.FaultPanic),
	}
	for hit := 0; hit < 64; hit++ {
		injs[1].Script(faultinject.PointLeaseStall, hit, faultinject.FaultTimeout)
	}
	var workers []<-chan error
	for i, inj := range injs {
		workers = append(workers, startWorker(t, addr, path, []string{"w0", "w1", "w2"}[i], inj, nil))
	}

	_, err = coord1.Run(nil, ln)
	if !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("coordinator #1: err = %v, want ErrInjectedCrash", err)
	}

	// Coordinator #2 resumes from the same journal on the same address
	// (the workers are still retrying against it).
	coord2 := newCoord(nil)
	var ln2 net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("relisten on %s: %v", addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	rep, err := coord2.Run(nil, ln2)
	if err != nil {
		t.Fatal(err)
	}
	for i, done := range workers {
		// A worker may miss the shutdown handshake under chaos (it was
		// reconnecting as the coordinator exited) and exhaust its dials
		// against a gone coordinator; that is not a failure.
		werr := <-done
		var ex *retry.ExhaustedError
		if werr != nil && !errors.As(werr, &ex) {
			t.Errorf("worker %d: %v", i, werr)
		}
	}
	if got := normalise(t, rep); got != want {
		t.Errorf("chaos fleet report differs from single-process run:\nfleet:  %s\nsingle: %s", got, want)
	}
}

// TestFleetDegradesToLocal: a coordinator whose fleet never shows up
// analyses every window locally and still produces the identical
// report.
func TestFleetDegradesToLocal(t *testing.T) {
	tr := fleetFixture()
	path := writeFixtureFile(t, tr)
	want := baseline(t, path)

	copt := fleetOpts()
	copt.TraceReader = openReader(t, path)
	coord, err := NewCoordinator(CoordinatorOptions{
		Detect:    copt,
		Journal:   filepath.Join(t.TempDir(), "coord.journal"),
		Shards:    2,
		IdleGrace: 50 * time.Millisecond,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := coord.Run(nil, ln)
	if err != nil {
		t.Fatal(err)
	}
	if got := normalise(t, rep); got != want {
		t.Errorf("degraded-local report differs from single-process run:\nlocal:  %s\nsingle: %s", got, want)
	}
	if coord.Collector().LeasesGranted() != 0 {
		t.Error("leases granted with no workers")
	}
}

// TestFleetSpeculativeWin: a worker held mid-shard (heartbeating, so
// its lease never expires) is hedged by a speculative duplicate lease,
// and the speculative worker's results win — first valid result per
// window — without disturbing report identity.
func TestFleetSpeculativeWin(t *testing.T) {
	tr := fleetFixture()
	path := writeFixtureFile(t, tr)
	want := baseline(t, path)

	copt := fleetOpts()
	copt.TraceReader = openReader(t, path)
	coord, err := NewCoordinator(CoordinatorOptions{
		Detect:         copt,
		Journal:        filepath.Join(t.TempDir(), "coord.journal"),
		Shards:         1,
		LeaseTTL:       30 * time.Second, // the holder's lease must NOT expire
		SpeculateAfter: 30 * time.Millisecond,
		ShutdownLinger: 200 * time.Millisecond, // the held straggler never drains
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	runCh := make(chan error, 1)
	var rep rvpredict.Report
	go func() {
		var rerr error
		rep, rerr = coord.Run(nil, ln)
		runCh <- rerr
	}()

	// The straggler holds before its first window, forever (until the
	// run is over); the hedge worker — started only once the straggler
	// provably owns the lease — does all the work speculatively.
	held := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	hctx, hcancel := context.WithCancel(context.Background())
	defer hcancel()
	holder := startWorkerCtx(t, hctx, addr, path, "straggler", nil, func(int) {
		once.Do(func() { close(held) })
		<-release
	})
	<-held
	hedge := startWorker(t, addr, path, "hedge", nil, nil)

	if err := <-runCh; err != nil {
		t.Fatal(err)
	}
	close(release)
	hcancel()
	if werr := <-hedge; werr != nil {
		t.Errorf("hedge worker: %v", werr)
	}
	<-holder // exits via the cancelled context once released
	if got := normalise(t, rep); got != want {
		t.Errorf("speculative report differs from single-process run:\nfleet:  %s\nsingle: %s", got, want)
	}
	if coord.Collector().SpeculativeWins() == 0 {
		t.Error("no speculative wins counted")
	}
}

// TestFleetLeaseExpiryReassign: a worker that goes silent (suppressed
// heartbeats while held mid-shard) loses its lease to the sweeper; the
// shard is reassigned, after backoff, to a live worker.
func TestFleetLeaseExpiryReassign(t *testing.T) {
	tr := fleetFixture()
	path := writeFixtureFile(t, tr)
	want := baseline(t, path)

	copt := fleetOpts()
	copt.TraceReader = openReader(t, path)
	coord, err := NewCoordinator(CoordinatorOptions{
		Detect:         copt,
		Journal:        filepath.Join(t.TempDir(), "coord.journal"),
		Shards:         1,
		LeaseTTL:       40 * time.Millisecond,
		SpeculateAfter: 30 * time.Second, // expiry path, not speculation
		ShutdownLinger: 200 * time.Millisecond,
		Backoff:        retry.Policy{Min: time.Millisecond, Max: 5 * time.Millisecond},
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	runCh := make(chan error, 1)
	var rep rvpredict.Report
	go func() {
		var rerr error
		rep, rerr = coord.Run(nil, ln)
		runCh <- rerr
	}()

	// The silent worker never heartbeats and holds before its first
	// window; once it provably owns the lease, the live worker starts,
	// the lease expires and the live worker takes over.
	silentInj := faultinject.New()
	for hit := 0; hit < 64; hit++ {
		silentInj.Script(faultinject.PointLeaseStall, hit, faultinject.FaultTimeout)
	}
	held := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	sctx, scancel := context.WithCancel(context.Background())
	defer scancel()
	silent := startWorkerCtx(t, sctx, addr, path, "silent", silentInj, func(int) {
		once.Do(func() { close(held) })
		<-release
	})
	<-held
	live := startWorker(t, addr, path, "live", nil, nil)

	if err := <-runCh; err != nil {
		t.Fatal(err)
	}
	close(release)
	scancel()
	if werr := <-live; werr != nil {
		t.Errorf("live worker: %v", werr)
	}
	<-silent
	if got := normalise(t, rep); got != want {
		t.Errorf("expiry report differs from single-process run:\nfleet:  %s\nsingle: %s", got, want)
	}
	col := coord.Collector()
	if col.LeasesExpired() == 0 {
		t.Error("no lease expiry counted")
	}
	if col.LeasesReassigned() == 0 {
		t.Error("no lease reassignment counted")
	}
}

// TestFleetFingerprintReject: a worker whose options differ from the
// coordinator's is rejected permanently at the handshake — it must not
// be able to contribute outcomes computed under the wrong options.
func TestFleetFingerprintReject(t *testing.T) {
	tr := fleetFixture()
	path := writeFixtureFile(t, tr)

	copt := fleetOpts()
	copt.TraceReader = openReader(t, path)
	coord, err := NewCoordinator(CoordinatorOptions{
		Detect:    copt,
		Journal:   filepath.Join(t.TempDir(), "coord.journal"),
		Shards:    1,
		IdleGrace: 24 * time.Hour, // the test finishes before any degrade
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cctx, ccancel := context.WithCancel(context.Background())
	coordDone := make(chan struct{})
	go func() {
		defer close(coordDone)
		coord.Run(cctx, ln) //nolint:errcheck
	}()
	t.Cleanup(func() { ccancel(); <-coordDone })

	wopt := fleetOpts()
	wopt.Witness = !wopt.Witness // result-affecting difference
	wopt.TraceReader = openReader(t, path)
	err = RunWorker(nil, WorkerOptions{
		Addr:   ln.Addr().String(),
		Detect: wopt,
		Name:   "misconfigured",
		Retry:  testWorkerRetry(),
	})
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Code != RejectFingerprint {
		t.Fatalf("err = %v, want *RejectError with RejectFingerprint", err)
	}
	if !rej.Permanent() {
		t.Error("fingerprint rejection not permanent")
	}
}
