// Package fleet implements fault-tolerant distributed shard analysis: a
// coordinator that owns a chunked trace's durable window journal and
// hands out shard leases to worker processes over a CRC-framed wire
// protocol, merging their journaled results into a report byte-identical
// to a single-process run — under worker crashes, stalled leases,
// corrupted results and coordinator crashes alike.
//
// The robustness spine:
//
//   - Leases carry deadlines renewed by heartbeat. An expired or
//     disconnected lease's shard is reassigned with exponential backoff
//     and jitter (internal/retry's schedule).
//   - Stragglers get speculative re-execution: when no shard is pending,
//     an idle worker is granted a second lease on a still-leased shard,
//     and the first valid result per window wins (CRC- and
//     fingerprint-gated, mirroring journal.RecoverShards'
//     first-listed-wins rule).
//   - Every accepted result is appended to the coordinator's journal and
//     fsynced before the worker is acked, so a SIGKILL'd coordinator
//     resumes from its own journal without losing an acked window.
//   - When the fleet shrinks to zero the coordinator degrades
//     gracefully: windows no worker covered are analysed locally by
//     rvpredict.MergeShards' completion pass.
//
// Framing and CRC discipline are internal/stream's (uvarint length ‖
// payload ‖ CRC32C over both), so a torn or corrupt frame is detected,
// never misparsed; result payloads carry an inner CRC over the encoded
// outcome so corruption injected after framing is still caught.
package fleet

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/journal"
	"repro/internal/stream"
)

// Handshake magic and protocol version. The worker's hello carries the
// 64-byte run fingerprint (trace content hash ‖ options fingerprint);
// a worker holding the wrong trace or result-affecting options is
// rejected before it can lease anything.
const (
	helloMagic   = "RVPW"
	replyMagic   = "RVPF"
	protoVersion = 1
)

// Message types, the first payload byte of every framed message.
const (
	// Worker → coordinator.
	msgReq       byte = 0x01 // idle: wants a lease
	msgHeartbeat byte = 0x02 // uvarint leaseID: renew the deadline
	msgResult    byte = 0x03 // uvarint leaseID ‖ uvarint window ‖ uvarint len ‖ enc ‖ crc32c(enc)
	msgShardDone byte = 0x04 // uvarint leaseID: every owned window was reported

	// Coordinator → worker.
	msgGrant    byte = 0x11 // uvarint leaseID ‖ uvarint shard ‖ uvarint shards ‖ uvarint ttl-ms ‖ speculative byte
	msgNone     byte = 0x12 // uvarint wait-ms: no grantable shard right now
	msgShutdown byte = 0x13 // all windows are durable; the worker exits
	msgAck      byte = 0x14 // status byte: ackOK or ackRejected
)

// Ack statuses.
const (
	ackOK       byte = 0
	ackRejected byte = 1
)

// Handshake reject codes.
const (
	// RejectFingerprint: the worker's trace or options differ from the
	// coordinator's. Permanent — the worker is misconfigured.
	RejectFingerprint byte = 1
	// RejectVersion: unsupported protocol version or malformed hello.
	// Permanent.
	RejectVersion byte = 2
	// RejectDraining: the coordinator is finishing up. Transient.
	RejectDraining byte = 3
)

// maxWorkerName bounds the advertised worker name.
const maxWorkerName = 64

// ErrProtocol reports a structurally invalid fleet frame or handshake.
var ErrProtocol = errors.New("fleet: protocol error")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// RejectError is the coordinator's refusing handshake reply, surfaced
// to the worker as an error. It implements retry.Permanent so a
// misconfigured worker fails fast instead of hammering the coordinator.
type RejectError struct {
	Code byte
	Msg  string
}

func (e *RejectError) Error() string {
	return fmt.Sprintf("fleet: worker rejected (code %d): %s", e.Code, e.Msg)
}

// Permanent reports whether retrying the identical handshake is
// pointless: a fingerprint or version mismatch cannot heal.
func (e *RejectError) Permanent() bool {
	return e.Code == RejectFingerprint || e.Code == RejectVersion
}

// fingerprintBytes flattens a journal fingerprint for the wire.
func fingerprintBytes(fp journal.Fingerprint) []byte {
	b := make([]byte, 0, 2*sha256.Size)
	b = append(b, fp.Trace[:]...)
	return append(b, fp.Options[:]...)
}

// writeHello writes the worker half of the handshake.
func writeHello(w io.Writer, fp journal.Fingerprint, name string) error {
	if len(name) > maxWorkerName {
		name = name[:maxWorkerName]
	}
	p := []byte(helloMagic)
	p = binary.AppendUvarint(p, protoVersion)
	p = append(p, fingerprintBytes(fp)...)
	p = binary.AppendUvarint(p, uint64(len(name)))
	p = append(p, name...)
	_, err := w.Write(p)
	return err
}

// readHello reads and validates a worker handshake against the
// coordinator's fingerprint, returning the worker's name and a reject
// code (0 for accepted).
func readHello(br *bufio.Reader, want journal.Fingerprint) (name string, code byte, err error) {
	magic := make([]byte, len(helloMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != helloMagic {
		return "", RejectVersion, fmt.Errorf("%w: bad hello magic", ErrProtocol)
	}
	ver, err := binary.ReadUvarint(br)
	if err != nil || ver != protoVersion {
		return "", RejectVersion, fmt.Errorf("%w: unsupported protocol version", ErrProtocol)
	}
	got := make([]byte, 2*sha256.Size)
	if _, err := io.ReadFull(br, got); err != nil {
		return "", RejectVersion, fmt.Errorf("%w: truncated fingerprint", ErrProtocol)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil || n > maxWorkerName {
		return "", RejectVersion, fmt.Errorf("%w: bad worker name length", ErrProtocol)
	}
	nb := make([]byte, n)
	if _, err := io.ReadFull(br, nb); err != nil {
		return "", RejectVersion, fmt.Errorf("%w: truncated worker name", ErrProtocol)
	}
	if !bytes.Equal(got, fingerprintBytes(want)) {
		return string(nb), RejectFingerprint,
			fmt.Errorf("%w: worker trace/options fingerprint differs from the coordinator's", ErrProtocol)
	}
	return string(nb), 0, nil
}

// writeReply writes the coordinator's handshake reply: code 0 accepts,
// anything else rejects with a message.
func writeReply(w io.Writer, code byte, msg string) error {
	p := []byte(replyMagic)
	p = append(p, code)
	p = binary.AppendUvarint(p, uint64(len(msg)))
	p = append(p, msg...)
	_, err := w.Write(p)
	return err
}

// readReply reads the coordinator's handshake reply; a refusal surfaces
// as a *RejectError.
func readReply(br *bufio.Reader) error {
	magic := make([]byte, len(replyMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != replyMagic {
		return fmt.Errorf("%w: bad handshake reply magic", ErrProtocol)
	}
	code, err := br.ReadByte()
	if err != nil {
		return fmt.Errorf("%w: truncated handshake reply", ErrProtocol)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil || n > 1<<10 {
		return fmt.Errorf("%w: bad handshake reply message", ErrProtocol)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(br, msg); err != nil {
		return fmt.Errorf("%w: truncated handshake reply message", ErrProtocol)
	}
	if code != 0 {
		return &RejectError{Code: code, Msg: string(msg)}
	}
	return nil
}

// resultPayload builds a msgResult frame payload. The inner CRC covers
// the encoded outcome alone, separately from the frame CRC: corruption
// injected after the frame is built (the result_corrupt fault point
// flips a byte of enc after this CRC was computed) is still caught by
// the coordinator's gate.
func resultPayload(leaseID uint64, window int, enc []byte) []byte {
	p := []byte{msgResult}
	p = binary.AppendUvarint(p, leaseID)
	p = binary.AppendUvarint(p, uint64(window))
	p = binary.AppendUvarint(p, uint64(len(enc)))
	p = append(p, enc...)
	return binary.LittleEndian.AppendUint32(p, crc32.Checksum(enc, castagnoli))
}

// parseResult decodes a msgResult payload (sans the leading type byte)
// and verifies the inner CRC before the outcome bytes are decoded.
func parseResult(b []byte) (leaseID uint64, window int, enc []byte, err error) {
	leaseID, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, 0, nil, fmt.Errorf("%w: truncated result lease", ErrProtocol)
	}
	b = b[n:]
	w, n := binary.Uvarint(b)
	if n <= 0 || w >= 1<<31 {
		return 0, 0, nil, fmt.Errorf("%w: bad result window", ErrProtocol)
	}
	b = b[n:]
	l, n := binary.Uvarint(b)
	if n <= 0 || int(l) != len(b)-n-4 {
		return 0, 0, nil, fmt.Errorf("%w: bad result length", ErrProtocol)
	}
	enc = b[n : n+int(l)]
	want := binary.LittleEndian.Uint32(b[n+int(l):])
	if got := crc32.Checksum(enc, castagnoli); got != want {
		return leaseID, int(w), nil, fmt.Errorf("%w: result CRC mismatch for window %d", ErrProtocol, w)
	}
	return leaseID, int(w), enc, nil
}

// grant is a decoded msgGrant.
type grant struct {
	leaseID     uint64
	shard       int
	shards      int
	ttlMS       uint64
	speculative bool
}

func grantPayload(g grant) []byte {
	p := []byte{msgGrant}
	p = binary.AppendUvarint(p, g.leaseID)
	p = binary.AppendUvarint(p, uint64(g.shard))
	p = binary.AppendUvarint(p, uint64(g.shards))
	p = binary.AppendUvarint(p, g.ttlMS)
	if g.speculative {
		return append(p, 1)
	}
	return append(p, 0)
}

func parseGrant(b []byte) (grant, error) {
	var g grant
	vals := make([]uint64, 4)
	for i := range vals {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return g, fmt.Errorf("%w: truncated grant", ErrProtocol)
		}
		vals[i] = v
		b = b[n:]
	}
	if len(b) != 1 || vals[1] >= 1<<31 || vals[2] == 0 || vals[2] >= 1<<31 || vals[1] >= vals[2] {
		return g, fmt.Errorf("%w: malformed grant", ErrProtocol)
	}
	g.leaseID, g.shard, g.shards, g.ttlMS = vals[0], int(vals[1]), int(vals[2]), vals[3]
	g.speculative = b[0] == 1
	return g, nil
}

func uvarintPayload(kind byte, v uint64) []byte {
	return binary.AppendUvarint([]byte{kind}, v)
}

func parseUvarint(b []byte) (uint64, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 || n != len(b) {
		return 0, fmt.Errorf("%w: malformed message body", ErrProtocol)
	}
	return v, nil
}

// writeMsg frames and writes one message payload.
func writeMsg(w io.Writer, payload []byte) error {
	return stream.WriteFrame(w, payload)
}

// readMsg reads one framed message and returns its type byte and body.
func readMsg(br *bufio.Reader) (byte, []byte, error) {
	p, err := stream.ReadFrame(br)
	if err != nil {
		return 0, nil, err
	}
	if len(p) == 0 {
		return 0, nil, fmt.Errorf("%w: empty message", ErrProtocol)
	}
	return p[0], p[1:], nil
}

// journalFingerprint is the fleet's run fingerprint: the chunked
// trace's content hash and the result-affecting options — the exact
// fingerprint rvpredict's shard journals and MergeShards use, so the
// coordinator journal merges through the ordinary machinery.
func journalFingerprint(contentHash [sha256.Size]byte, resultFingerprint string) journal.Fingerprint {
	return journal.Fingerprint{
		Trace:   contentHash,
		Options: journal.OptionsFingerprint(resultFingerprint),
	}
}
