package deadlock

import (
	"testing"

	"repro/minilang"
	"repro/trace"
)

const (
	a trace.Addr = 100
	b trace.Addr = 101
	g trace.Addr = 102
)

// abba builds the classic inversion, observed without deadlocking (t1 runs
// completely before t2).
func abba() *trace.Trace {
	bld := trace.NewBuilder()
	bld.At(1).Acquire(1, a)
	bld.At(2).Acquire(1, b)
	bld.At(3).Release(1, b)
	bld.At(4).Release(1, a)
	bld.At(5).Acquire(2, b)
	bld.At(6).Acquire(2, a)
	bld.At(7).Release(2, a)
	bld.At(8).Release(2, b)
	return bld.Trace()
}

func TestClassicInversionPredicted(t *testing.T) {
	tr := abba()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	res := New(Options{Witness: true}).Detect(tr)
	if len(res.Deadlocks) != 1 {
		t.Fatalf("deadlocks = %d, want 1 (candidates %d)", len(res.Deadlocks), res.Candidates)
	}
	d := res.Deadlocks[0]
	if d.HeldAcquire1 != 0 || d.BlockedAcquire1 != 1 ||
		d.HeldAcquire2 != 4 || d.BlockedAcquire2 != 5 {
		t.Errorf("deadlock sites = %+v", d)
	}
	// The witness prefix must contain both held acquires and neither
	// blocked acquire nor any release of the held locks.
	inW := map[int]bool{}
	for _, e := range d.Witness {
		inW[e] = true
	}
	if !inW[0] || !inW[4] {
		t.Errorf("witness must contain both held acquires: %v", d.Witness)
	}
	if inW[1] || inW[5] || inW[3] || inW[7] {
		t.Errorf("witness must stop before the blocked acquires/releases: %v", d.Witness)
	}
	if got := d.Describe(tr); got == "" {
		t.Error("Describe must render")
	}
}

func TestGateLockPreventsDeadlock(t *testing.T) {
	// Both inversions guarded by a common gate: the classic lockset-style
	// false positive that the constraint-based detector must reject.
	bld := trace.NewBuilder()
	bld.Acquire(1, g)
	bld.Acquire(1, a)
	bld.Acquire(1, b)
	bld.Release(1, b)
	bld.Release(1, a)
	bld.Release(1, g)
	bld.Acquire(2, g)
	bld.Acquire(2, b)
	bld.Acquire(2, a)
	bld.Release(2, a)
	bld.Release(2, b)
	bld.Release(2, g)
	tr := bld.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	res := New(Options{}).Detect(tr)
	if len(res.Deadlocks) != 0 {
		t.Fatalf("gate-locked inversion must not deadlock, got %+v", res.Deadlocks)
	}
	if res.Candidates == 0 {
		t.Error("the inversion candidates must at least be examined")
	}
}

func TestSameOrderNoCandidates(t *testing.T) {
	bld := trace.NewBuilder()
	for _, tid := range []trace.TID{1, 2} {
		bld.Acquire(tid, a)
		bld.Acquire(tid, b)
		bld.Release(tid, b)
		bld.Release(tid, a)
	}
	res := New(Options{}).Detect(bld.Trace())
	if len(res.Deadlocks) != 0 {
		t.Fatalf("consistent lock order must not deadlock, got %+v", res.Deadlocks)
	}
}

func TestForkOrderPreventsDeadlock(t *testing.T) {
	// t1's nested section completes before t2 is even forked: the
	// must-happen-before edges make the deadlocked cut unreachable.
	bld := trace.NewBuilder()
	bld.Acquire(1, a)
	bld.Acquire(1, b)
	bld.Release(1, b)
	bld.Release(1, a)
	bld.Fork(1, 2)
	bld.Begin(2)
	bld.Acquire(2, b)
	bld.Acquire(2, a)
	bld.Release(2, a)
	bld.Release(2, b)
	tr := bld.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	res := New(Options{}).Detect(tr)
	if len(res.Deadlocks) != 0 {
		t.Fatalf("fork-ordered inversion must not deadlock, got %+v", res.Deadlocks)
	}
}

func TestBranchGuardPreventsDeadlock(t *testing.T) {
	// t2's inner acquire is guarded by a branch that requires x == 1,
	// written by t1 only after releasing both locks: at any deadlocked cut
	// t1 still holds lock a, so the guard's read can never be satisfied.
	bld := trace.NewBuilder()
	bld.At(1).Acquire(1, a)
	bld.At(2).Acquire(1, b)
	bld.At(3).Release(1, b)
	bld.At(4).Release(1, a)
	bld.At(5).Write(1, 5, 1)
	bld.At(6).ReadV(2, 5, 1)
	bld.At(7).Branch(2)
	bld.At(8).Acquire(2, b)
	bld.At(9).Acquire(2, a)
	bld.At(10).Release(2, a)
	bld.At(11).Release(2, b)
	tr := bld.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	res := New(Options{}).Detect(tr)
	if len(res.Deadlocks) != 0 {
		t.Fatalf("branch-guarded inversion must not deadlock, got %+v", res.Deadlocks)
	}

	// Control: without the branch, the same trace deadlocks (the read may
	// data-abstractly return anything).
	bld2 := trace.NewBuilder()
	bld2.At(1).Acquire(1, a)
	bld2.At(2).Acquire(1, b)
	bld2.At(3).Release(1, b)
	bld2.At(4).Release(1, a)
	bld2.At(5).Write(1, 5, 1)
	bld2.At(6).ReadV(2, 5, 1)
	bld2.At(8).Acquire(2, b)
	bld2.At(9).Acquire(2, a)
	bld2.At(10).Release(2, a)
	bld2.At(11).Release(2, b)
	res2 := New(Options{}).Detect(bld2.Trace())
	if len(res2.Deadlocks) != 1 {
		t.Fatalf("unguarded control must deadlock, got %+v", res2.Deadlocks)
	}
}

func TestDiningPhilosophersFromMinilang(t *testing.T) {
	// Two philosophers picking up forks in opposite order; a sequential
	// run completes without deadlocking, and the detector predicts the
	// deadlock from that innocent trace.
	prog, err := minilang.Compile(`lock forkA, forkB;
shared meals;
thread table {
  fork p1;
  fork p2;
  join p1;
  join p2;
}
thread p1 {
  lock forkA;
  lock forkB;
  meals = meals + 1;
  unlock forkB;
  unlock forkA;
}
thread p2 {
  lock forkB;
  lock forkA;
  meals = meals + 1;
  unlock forkA;
  unlock forkB;
}`)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := prog.Run(minilang.RunOptions{Scheduler: minilang.Sequential{}})
	if err != nil {
		t.Fatalf("the sequential run itself must not deadlock: %v", err)
	}
	res := New(Options{Witness: true}).Detect(tr)
	if len(res.Deadlocks) != 1 {
		t.Fatalf("want the predicted deadlock, got %+v (candidates %d)",
			res.Deadlocks, res.Candidates)
	}
}

func TestDedupBySites(t *testing.T) {
	// The same static inversion executed twice is reported once.
	bld := trace.NewBuilder()
	for range [2]int{} {
		bld.At(1).Acquire(1, a)
		bld.At(2).Acquire(1, b)
		bld.At(3).Release(1, b)
		bld.At(4).Release(1, a)
		bld.At(5).Acquire(2, b)
		bld.At(6).Acquire(2, a)
		bld.At(7).Release(2, a)
		bld.At(8).Release(2, b)
	}
	res := New(Options{}).Detect(bld.Trace())
	if len(res.Deadlocks) != 1 {
		t.Fatalf("deduplicated deadlocks = %d, want 1", len(res.Deadlocks))
	}
}
