// Package deadlock implements predictive deadlock detection on the
// paper's maximal causal model — the Section 2.5 observation that the
// model supports concurrency properties beyond races, realised with the
// same constraint machinery as the race detector.
//
// A two-thread deadlock candidate is a lock inversion: thread t1 acquires
// lock a and, still holding it, acquires lock b, while t2 acquires b and,
// still holding it, acquires a. The candidate is a real (predictable)
// deadlock iff some feasible reordering reaches a cut where both threads
// hold their first lock and are about to request the second: encoded as
//
//	Φ_mhb ∧ Φ_lock ∧ O(pred₁) < C < O(acq₁ᵇ) ∧ O(pred₂) < C < O(acq₂ᵃ)
//	      ∧ ⟨cf⟩(acq₁ᵇ) ∧ ⟨cf⟩(acq₂ᵃ)
//
// over the order variables plus a fresh cut variable C, where predᵢ is the
// program-order predecessor of the blocked acquire and ⟨cf⟩ is the same
// control-flow feasibility as for races. Nesting puts each thread's first
// acquire before — and its release after — the cut automatically, so at C
// both locks are held and both next acquires block: a deadlocked state.
// Satisfiability is decided by the DPLL(T) solver; the model yields a
// witness schedule ending in the deadlock.
//
// Like the race detector this is sound (every report is a real reachable
// deadlock) — in particular the classic gate-lock pattern, where both
// inversions are guarded by a common outer lock, is proved infeasible
// rather than heuristically suppressed.
package deadlock

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/encode"
	"repro/internal/race"
	"repro/internal/sat"
	"repro/internal/smt"
	"repro/internal/telemetry"
	"repro/internal/vc"
	"repro/trace"
)

// Options configures the detector.
type Options struct {
	// WindowSize splits the trace into fixed-size windows; ≤ 0 analyses
	// the whole trace at once.
	WindowSize int
	// SolveTimeout bounds each candidate's solver run; ≤ 0 = unbounded.
	// (rvpredict.Options maps its zero value to the paper's 60 s default,
	// and negatives to 0, before reaching this layer.)
	SolveTimeout time.Duration
	// MaxConflicts bounds each candidate's CDCL search; 0 = unbounded.
	MaxConflicts int64
	// Witness requests witness schedules.
	Witness bool
	// Telemetry, when non-nil, accumulates phase timings, solver counters
	// and outcome tallies; enabling it changes no detection result.
	Telemetry *telemetry.Collector
	// Tracer, when non-nil, receives live progress callbacks.
	Tracer telemetry.Tracer
}

// Deadlock is one detected two-thread deadlock.
type Deadlock struct {
	// HeldAcquire1/BlockedAcquire1 are t1's acquire of lock A and its
	// blocked acquire of lock B (event indices); HeldAcquire2 and
	// BlockedAcquire2 are t2's counterparts.
	HeldAcquire1, BlockedAcquire1 int
	HeldAcquire2, BlockedAcquire2 int
	// LockA and LockB are the two inverted locks.
	LockA, LockB trace.Addr
	// Witness, when requested, is a feasible schedule prefix ending with
	// both threads inside their first critical sections, one step from the
	// blocked acquires.
	Witness []int
}

// Describe renders the deadlock with location names.
func (d Deadlock) Describe(tr *trace.Trace) string {
	return fmt.Sprintf("deadlock: t%d holds l%d at %s wanting l%d at %s; t%d holds l%d at %s wanting l%d at %s",
		tr.Event(d.HeldAcquire1).Tid, d.LockA, tr.LocName(tr.Event(d.HeldAcquire1).Loc),
		d.LockB, tr.LocName(tr.Event(d.BlockedAcquire1).Loc),
		tr.Event(d.HeldAcquire2).Tid, d.LockB, tr.LocName(tr.Event(d.HeldAcquire2).Loc),
		d.LockA, tr.LocName(tr.Event(d.BlockedAcquire2).Loc))
}

// Result is the outcome of a deadlock detection run.
type Result struct {
	Deadlocks    []Deadlock
	Candidates   int // lock-inversion patterns examined
	Windows      int
	SolverAborts int
	Elapsed      time.Duration
	// Cancelled reports the run was interrupted by context cancellation;
	// the results cover the candidates decided before the cancel and are
	// sound but not maximal.
	Cancelled bool
}

// Detector is the predictive deadlock detector.
type Detector struct {
	opt Options
}

// New returns a detector with the given options.
func New(opt Options) *Detector { return &Detector{opt: opt} }

// nested describes one "acquire b while holding a" site.
type nested struct {
	tid      trace.TID
	lockA    trace.Addr
	acqA     int // acquire of the held lock
	lockB    trace.Addr
	acqB     int // the inner acquire
	predAcqB int // program-order predecessor of acqB
}

// Detect finds all feasible two-thread lock-inversion deadlocks.
func (d *Detector) Detect(tr *trace.Trace) Result {
	return d.DetectContext(context.Background(), tr)
}

// DetectContext runs Detect under ctx: the context is polled between
// windows, between candidates and inside the solver's conflict loop, so
// cancellation interrupts a run mid-solve. The partial Result covers the
// candidates decided before the cancel and is flagged Cancelled. A nil
// ctx is treated as context.Background().
func (d *Detector) DetectContext(ctx context.Context, tr *trace.Trace) Result {
	if ctx == nil {
		ctx = context.Background()
	}
	cancel := func() bool { return ctx.Err() != nil }
	start := time.Now()
	col := d.opt.Telemetry
	tracer := d.opt.Tracer
	instrumented := col != nil || tracer != nil
	var res Result
	type sigKey [4]trace.Loc
	seen := make(map[sigKey]bool)
	widx := 0
	res.Windows = race.Windows(tr, d.opt.WindowSize, func(w *trace.Trace, offset int) {
		wi := widx
		widx++
		if ctx.Err() != nil {
			res.Cancelled = true
			return
		}
		if tracer != nil {
			tracer.WindowStart(wi, w.Len())
		}
		var wstart time.Time
		if instrumented {
			wstart = time.Now()
		}
		foundBefore := len(res.Deadlocks)
		candsBefore := res.Candidates

		span := col.StartPhase(telemetry.PhaseEnumerate)
		sites := nestedSites(w)
		span.End()
		span = col.StartPhase(telemetry.PhaseEncode)
		mhb := vc.ComputeMHB(w)
		span.End()
	outer:
		for i := 0; i < len(sites); i++ {
			for j := i + 1; j < len(sites); j++ {
				if ctx.Err() != nil {
					res.Cancelled = true
					break outer
				}
				s1, s2 := sites[i], sites[j] // s1.acqB < s2.acqB by sort order
				if s1.tid == s2.tid || s1.lockA != s2.lockB || s1.lockB != s2.lockA {
					continue
				}
				// Deduplicate by the unordered pair of static sites.
				p1 := [2]trace.Loc{w.Event(s1.acqA).Loc, w.Event(s1.acqB).Loc}
				p2 := [2]trace.Loc{w.Event(s2.acqA).Loc, w.Event(s2.acqB).Loc}
				if p2[0] < p1[0] || (p2[0] == p1[0] && p2[1] < p1[1]) {
					p1, p2 = p2, p1
				}
				key := sigKey{p1[0], p1[1], p2[0], p2[1]}
				if seen[key] {
					col.CountSigDedup()
					continue
				}
				res.Candidates++
				col.CountEnumerated(1)
				var qstart time.Time
				if tracer != nil {
					qstart = time.Now()
				}
				ok, witness, outcome := d.check(w, mhb, s1, s2, cancel)
				col.CountOutcome(outcome)
				if tracer != nil {
					tracer.QuerySolved(wi, s1.acqB+offset, s2.acqB+offset,
						outcome, time.Since(qstart))
				}
				if outcome.Aborted() {
					res.SolverAborts++
					if outcome == telemetry.OutcomeCancelled {
						res.Cancelled = true
					}
				}
				if ok {
					seen[key] = true
					dl := Deadlock{
						HeldAcquire1: s1.acqA + offset, BlockedAcquire1: s1.acqB + offset,
						HeldAcquire2: s2.acqA + offset, BlockedAcquire2: s2.acqB + offset,
						LockA: s1.lockA, LockB: s1.lockB,
					}
					if witness != nil {
						for k := range witness {
							witness[k] += offset
						}
						dl.Witness = witness
					}
					res.Deadlocks = append(res.Deadlocks, dl)
				}
			}
		}
		if col != nil {
			col.WindowDone(telemetry.WindowRecord{
				Offset:     offset,
				Events:     w.Len(),
				Candidates: res.Candidates - candsBefore,
				Solved:     res.Candidates - candsBefore,
				Findings:   len(res.Deadlocks) - foundBefore,
				ElapsedNS:  int64(time.Since(wstart)),
			})
		}
		if tracer != nil {
			tracer.WindowDone(wi, len(res.Deadlocks)-foundBefore, time.Since(wstart))
		}
	})
	if ctx.Err() != nil {
		res.Cancelled = true
	}
	res.Elapsed = time.Since(start)
	return res
}

// nestedSites scans the trace for inner acquires performed while holding
// another lock.
func nestedSites(tr *trace.Trace) []nested {
	type heldLock struct {
		lock trace.Addr
		acq  int
	}
	held := make(map[trace.TID][]heldLock)
	lastOf := make(map[trace.TID]int)
	var out []nested
	for i := 0; i < tr.Len(); i++ {
		e := tr.Event(i)
		switch e.Op {
		case trace.OpAcquire:
			for _, h := range held[e.Tid] {
				out = append(out, nested{
					tid:   e.Tid,
					lockA: h.lock, acqA: h.acq,
					lockB: e.Addr, acqB: i,
					predAcqB: lastOf[e.Tid],
				})
			}
			held[e.Tid] = append(held[e.Tid], heldLock{lock: e.Addr, acq: i})
		case trace.OpRelease:
			hs := held[e.Tid]
			for k := len(hs) - 1; k >= 0; k-- {
				if hs[k].lock == e.Addr {
					held[e.Tid] = append(hs[:k], hs[k+1:]...)
					break
				}
			}
		}
		lastOf[e.Tid] = i
	}
	sort.Slice(out, func(i, j int) bool { return out[i].acqB < out[j].acqB })
	return out
}

// check decides one candidate pair.
func (d *Detector) check(w *trace.Trace, mhb *vc.MHB, s1, s2 nested, cancel func() bool) (isDeadlock bool, witness []int, outcome telemetry.Outcome) {
	col := d.opt.Telemetry
	s := smt.NewSolver()
	defer col.AddSolver(s)
	s.SetCancel(cancel)
	if d.opt.SolveTimeout > 0 {
		s.SetDeadline(time.Now().Add(d.opt.SolveTimeout))
	}
	if d.opt.MaxConflicts > 0 {
		s.SetMaxConflicts(d.opt.MaxConflicts)
	}
	span := col.StartPhase(telemetry.PhaseEncode)
	enc := encode.New(w, s, mhb, -1, -1)
	if err := enc.AssertMHB(); err != nil {
		span.End()
		return false, nil, telemetry.OutcomeUnsat
	}
	// The cut: both threads have executed up to just before their blocked
	// acquire. The blocked acquires themselves sit after the cut — they
	// are the requests that can never be granted in the deadlocked state.
	// Lock mutual exclusion is enforced within the prefix only (see
	// encode.AssertLocksCut).
	cut := s.IntVar()
	if err := enc.AssertLocksCut(cut); err != nil {
		span.End()
		return false, nil, telemetry.OutcomeUnsat
	}
	if err := s.Assert(smt.And(
		smt.Less(enc.Var(s1.predAcqB), cut),
		smt.Less(cut, enc.Var(s1.acqB)),
		smt.Less(enc.Var(s2.predAcqB), cut),
		smt.Less(cut, enc.Var(s2.acqB)),
	)); err != nil {
		span.End()
		return false, nil, telemetry.OutcomeUnsat
	}
	cf := encode.NewCF(enc, s, 0)
	if err := cf.AssertControlFlow(s1.acqB); err != nil {
		span.End()
		return false, nil, telemetry.OutcomeUnsat
	}
	if err := cf.AssertControlFlow(s2.acqB); err != nil {
		span.End()
		return false, nil, telemetry.OutcomeUnsat
	}
	span.End()
	span = col.StartPhase(telemetry.PhaseSolve)
	verdict := s.Solve()
	span.End()
	switch verdict {
	case sat.Sat:
		if d.opt.Witness {
			span = col.StartPhase(telemetry.PhaseWitness)
			witness = cutWitness(enc, s, cut)
			span.End()
		}
		return true, witness, telemetry.OutcomeSat
	case sat.Aborted:
		return false, nil, telemetry.OutcomeOf(s, false, true)
	}
	return false, nil, telemetry.OutcomeUnsat
}

// cutWitness returns the events ordered before the cut, sorted by model
// order — the feasible prefix reaching the deadlocked state.
func cutWitness(enc *encode.Encoder, s *smt.Solver, cut smt.IntVar) []int {
	cv := s.Value(cut)
	type ev struct {
		idx int
		val int64
	}
	var pre []ev
	for i := 0; i < enc.Trace().Len(); i++ {
		if v := s.Value(enc.Var(i)); v < cv {
			pre = append(pre, ev{idx: i, val: v})
		}
	}
	sort.Slice(pre, func(i, j int) bool {
		if pre[i].val != pre[j].val {
			return pre[i].val < pre[j].val
		}
		return pre[i].idx < pre[j].idx
	})
	out := make([]int, len(pre))
	for i, p := range pre {
		out[i] = p.idx
	}
	return out
}
