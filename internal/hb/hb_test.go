package hb

import (
	"testing"

	"repro/internal/fixtures"
	"repro/trace"
)

func TestFigure1NoHBRaces(t *testing.T) {
	// Every COP of Figure 1 is HB-ordered: (3,10) and (4,8) through the
	// release→acquire edge, (12,15) through end→join. HB finds nothing —
	// the paper's motivation.
	res := New(Options{}).Detect(fixtures.Figure1())
	if len(res.Races) != 0 {
		t.Errorf("HB must find no races in Figure 1, got %v", res.Races)
	}
}

func TestFigure2BothCasesMissed(t *testing.T) {
	// The volatile write→read edge orders (1,4) in both cases; HB cannot
	// distinguish them and misses the case-¿ race.
	for _, branch := range []bool{false, true} {
		res := New(Options{}).Detect(fixtures.Figure2(branch))
		if len(res.Races) != 0 {
			t.Errorf("branch=%v: HB must miss (1,4), got %v", branch, res.Races)
		}
	}
}

func TestPlainRaceDetected(t *testing.T) {
	b := trace.NewBuilder()
	b.At(1).Write(1, 5, 1)
	b.At(2).ReadV(2, 5, 1)
	res := New(Options{}).Detect(b.Trace())
	if len(res.Races) != 1 {
		t.Fatalf("unordered conflicting accesses must race, got %v", res.Races)
	}
}

func TestLockEdgeOrders(t *testing.T) {
	// t1: acq w(x) rel ; t2: acq r(x) rel — ordered by the release→acquire
	// edge, so HB reports nothing (though RV would: they can't overlap but
	// also can't be adjacent… actually with both accesses inside critical
	// sections of the same lock this is not a race for anyone).
	b := trace.NewBuilder()
	b.Acquire(1, 9).At(1).Write(1, 5, 1).Release(1, 9)
	b.Acquire(2, 9).At(2).Read(2, 5).Release(2, 9)
	res := New(Options{}).Detect(b.Trace())
	if len(res.Races) != 0 {
		t.Errorf("lock-ordered accesses must not be HB races, got %v", res.Races)
	}
}

func TestHBMissesCommutableLockRegions(t *testing.T) {
	// The write is inside a critical section, the read outside (after it),
	// the sections have NO conflicting contents: still ordered for HB via
	// the release→acquire edge — a race HB misses but CP/RV find.
	b := trace.NewBuilder()
	b.At(1).Acquire(1, 9).At(2).Write(1, 5, 1).At(3).Release(1, 9)
	b.At(4).Acquire(2, 9).At(5).Write(2, 6, 1).At(6).Release(2, 9)
	b.At(7).ReadV(2, 5, 1)
	res := New(Options{}).Detect(b.Trace())
	if len(res.Races) != 0 {
		t.Errorf("HB is expected to miss this race (conservative edge), got %v", res.Races)
	}
}

func TestForkJoinOrdering(t *testing.T) {
	b := trace.NewBuilder()
	b.At(1).Write(1, 5, 1)
	b.Fork(1, 2)
	b.Begin(2)
	b.At(2).Read(2, 5)
	b.End(2)
	b.Join(1, 2)
	b.At(3).Write(1, 5, 2)
	res := New(Options{}).Detect(b.Trace())
	if len(res.Races) != 0 {
		t.Errorf("fork/join-ordered accesses must not race, got %v", res.Races)
	}
}

func TestNotifyLinkOrdering(t *testing.T) {
	// Writer notifies a waiting reader: the release→notify→acquire
	// bracketing orders the write before the post-wait read.
	b := trace.NewBuilder()
	b.Acquire(1, 9)
	b.Wait(1, 9, func(b *trace.Builder) int {
		b.At(1).Write(2, 5, 1)
		n := b.Mark()
		b.At(2).Write(2, 6, 1) // stands in for the notify site
		return n
	})
	b.At(3).Read(1, 5)
	b.Release(1, 9)
	tr := b.Trace()
	res := New(Options{}).Detect(tr)
	for _, r := range res.Races {
		if r.Sig.First == 1 && r.Sig.Second == 3 {
			t.Errorf("notify-ordered pair (1,3) must not be an HB race")
		}
	}
}

func TestClocksAccessors(t *testing.T) {
	tr := fixtures.Figure1()
	ec := Clocks(tr)
	if ec.Before(3, 3) {
		t.Error("Before must be irreflexive")
	}
	if !ec.Before(0, 5) {
		t.Error("fork must happen-before child's begin")
	}
	if ec.Clock(0) == nil {
		t.Error("Clock accessor must return the event clock")
	}
	if !ec.Before(2, 9) {
		t.Error("w(x)@2 HB r(x)@9 via the lock edge")
	}
	if ec.Concurrent(2, 9) {
		t.Error("Concurrent must be false for ordered events")
	}
}

func TestWindowedDetect(t *testing.T) {
	b := trace.NewBuilder()
	for i := 0; i < 30; i++ {
		b.At(trace.Loc(100 + i)).Branch(3)
	}
	b.At(1).Write(1, 5, 1)
	b.At(2).ReadV(2, 5, 1)
	res := New(Options{WindowSize: 8}).Detect(b.Trace())
	if len(res.Races) != 1 {
		t.Errorf("windowed HB should find the race, got %v", res.Races)
	}
	if res.Windows != 4 {
		t.Errorf("windows = %d, want 4", res.Windows)
	}
}
