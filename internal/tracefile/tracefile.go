// Package tracefile serialises traces to a compact binary format (and a
// human-readable text dump), decoupling trace collection from analysis the
// way the paper's RVPredict stores events to a database before its
// prediction phase. The binary format is varint-based: a few bytes per
// event at the tens-of-millions scale the paper reports.
package tracefile

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/trace"
)

// Magic identifies the binary format; Version its revision.
const (
	Magic   = "RVPT"
	Version = 1
)

// ErrFormat reports a malformed input.
var ErrFormat = errors.New("tracefile: malformed input")

type writer struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
}

func (w *writer) uvarint(v uint64) error {
	n := binary.PutUvarint(w.buf[:], v)
	_, err := w.w.Write(w.buf[:n])
	return err
}

func (w *writer) varint(v int64) error {
	n := binary.PutVarint(w.buf[:], v)
	_, err := w.w.Write(w.buf[:n])
	return err
}

// Encode writes tr to w in the binary format.
func Encode(w io.Writer, tr *trace.Trace) error {
	bw := &writer{w: bufio.NewWriter(w)}
	if _, err := bw.w.WriteString(Magic); err != nil {
		return err
	}
	if err := bw.uvarint(Version); err != nil {
		return err
	}
	if err := bw.uvarint(uint64(tr.Len())); err != nil {
		return err
	}
	var scratch []byte
	for _, e := range tr.Events() {
		scratch = AppendEvent(scratch[:0], e)
		if _, err := bw.w.Write(scratch); err != nil {
			return err
		}
	}
	links := tr.NotifyLinks()
	if err := bw.uvarint(uint64(len(links))); err != nil {
		return err
	}
	for _, ln := range links {
		if err := bw.uvarint(uint64(ln.Notify)); err != nil {
			return err
		}
		if err := bw.uvarint(uint64(ln.Release)); err != nil {
			return err
		}
		if err := bw.uvarint(uint64(ln.Acquire)); err != nil {
			return err
		}
	}
	// Volatile addresses, initial values and location names: gathered by
	// scanning the trace's accessors over the address/location space it
	// actually uses.
	vols, inits, names := collectMeta(tr)
	if err := bw.uvarint(uint64(len(vols))); err != nil {
		return err
	}
	for _, a := range vols {
		if err := bw.uvarint(uint64(a)); err != nil {
			return err
		}
	}
	if err := bw.uvarint(uint64(len(inits))); err != nil {
		return err
	}
	for _, kv := range inits {
		if err := bw.uvarint(uint64(kv.addr)); err != nil {
			return err
		}
		if err := bw.varint(kv.val); err != nil {
			return err
		}
	}
	if err := bw.uvarint(uint64(len(names))); err != nil {
		return err
	}
	for _, nm := range names {
		if err := bw.uvarint(uint64(nm.loc)); err != nil {
			return err
		}
		if err := bw.uvarint(uint64(len(nm.name))); err != nil {
			return err
		}
		if _, err := bw.w.WriteString(nm.name); err != nil {
			return err
		}
	}
	return bw.w.Flush()
}

// AppendEvent appends the wire encoding of one event to dst — the exact
// per-event layout Encode writes — and returns the extended slice. The
// streaming protocol (internal/stream) frames batches of these
// encodings, so a streamed window re-decodes bit-identically to a batch
// Decode of the same events.
func AppendEvent(dst []byte, e trace.Event) []byte {
	dst = binary.AppendVarint(dst, int64(e.Tid))
	dst = append(dst, byte(e.Op))
	dst = binary.AppendUvarint(dst, uint64(e.Addr))
	dst = binary.AppendVarint(dst, e.Value)
	dst = binary.AppendUvarint(dst, uint64(e.Loc))
	return dst
}

// DecodeEvent consumes one AppendEvent encoding from the front of buf,
// returning the event and the number of bytes consumed. Truncated or
// malformed input yields ErrFormat, never a panic — the streaming
// decoder feeds it frames straight off the network.
func DecodeEvent(buf []byte) (trace.Event, int, error) {
	var e trace.Event
	tid, n := binary.Varint(buf)
	if n <= 0 {
		return e, 0, fmt.Errorf("%w: truncated event tid", ErrFormat)
	}
	off := n
	if off >= len(buf) {
		return e, 0, fmt.Errorf("%w: truncated event op", ErrFormat)
	}
	op := buf[off]
	off++
	addr, n := binary.Uvarint(buf[off:])
	if n <= 0 {
		return e, 0, fmt.Errorf("%w: truncated event addr", ErrFormat)
	}
	off += n
	val, n := binary.Varint(buf[off:])
	if n <= 0 {
		return e, 0, fmt.Errorf("%w: truncated event value", ErrFormat)
	}
	off += n
	loc, n := binary.Uvarint(buf[off:])
	if n <= 0 {
		return e, 0, fmt.Errorf("%w: truncated event loc", ErrFormat)
	}
	off += n
	e = trace.Event{
		Tid:   trace.TID(tid),
		Op:    trace.Op(op),
		Addr:  trace.Addr(addr),
		Value: val,
		Loc:   trace.Loc(loc),
	}
	return e, off, nil
}

type addrVal struct {
	addr trace.Addr
	val  int64
}

type locName struct {
	loc  trace.Loc
	name string
}

// AddrValue pairs an address with its non-zero declared initial value.
type AddrValue struct {
	Addr  trace.Addr
	Value int64
}

// LocNameEntry pairs a program location with its registered name.
type LocNameEntry struct {
	Loc  trace.Loc
	Name string
}

// CollectMeta enumerates the metadata reachable from the trace's events
// in the same deterministic order Encode serialises it: volatile
// addresses, non-zero initial values and registered location names,
// each keyed by first use. The streaming client (capture.StreamTrace)
// sends exactly this set ahead of the events, which keeps a streamed
// session's windows bit-identical to a batch run over the encoded
// trace.
func CollectMeta(tr *trace.Trace) ([]trace.Addr, []AddrValue, []LocNameEntry) {
	vols, inits, names := collectMeta(tr)
	outInits := make([]AddrValue, len(inits))
	for i, kv := range inits {
		outInits[i] = AddrValue{Addr: kv.addr, Value: kv.val}
	}
	outNames := make([]LocNameEntry, len(names))
	for i, nm := range names {
		outNames[i] = LocNameEntry{Loc: nm.loc, Name: nm.name}
	}
	return vols, outInits, outNames
}

// collectMeta extracts the metadata reachable from the trace's events in a
// deterministic order.
func collectMeta(tr *trace.Trace) (vols []trace.Addr, inits []addrVal, names []locName) {
	seenAddr := make(map[trace.Addr]bool)
	seenLoc := make(map[trace.Loc]bool)
	for _, e := range tr.Events() {
		if (e.Op.IsAccess() || e.Op == trace.OpAcquire || e.Op == trace.OpRelease) &&
			!seenAddr[e.Addr] {
			seenAddr[e.Addr] = true
			if tr.Volatile(e.Addr) {
				vols = append(vols, e.Addr)
			}
			if v := tr.Initial(e.Addr); v != 0 {
				inits = append(inits, addrVal{addr: e.Addr, val: v})
			}
		}
		if e.Loc != trace.NoLoc && !seenLoc[e.Loc] {
			seenLoc[e.Loc] = true
			if name := tr.LocName(e.Loc); name != fmt.Sprintf("L%d", e.Loc) {
				names = append(names, locName{loc: e.Loc, name: name})
			}
		}
	}
	return vols, inits, names
}

type reader struct {
	r *bufio.Reader
}

func (r *reader) uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, err := binary.ReadVarint(r.r)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	return v, nil
}

// Decode limits. Hostile inputs can claim arbitrary counts in a few
// bytes, so every count is validated before it drives an allocation or a
// long loop: decoding must fail with ErrFormat in bounded memory, never
// OOM. The caps are far above anything Encode produces for real traces.
const (
	// maxEvents bounds the declared event count.
	maxEvents = 1 << 31
	// maxCapHint bounds the event-slice pre-allocation taken from the
	// (unverified) header count; larger honest traces just grow.
	maxCapHint = 1 << 16
	// maxMeta bounds each metadata section's count (notify links,
	// volatiles, initial values, location names).
	maxMeta = 1 << 24
	// maxNameLen bounds one location name's byte length.
	maxNameLen = 1 << 16
)

// Decode reads a binary trace from r. It is safe on hostile input: all
// counts and lengths are validated before allocation, and a corrupt
// length prefix yields an ErrFormat error within bounded memory.
func Decode(r io.Reader) (*trace.Trace, error) {
	s, err := NewScanner(r)
	if err != nil {
		return nil, err
	}
	// Pre-size from the header but never trust it for a large allocation:
	// a corrupt count must fail on the (missing) event data, not by
	// exhausting memory up front. Each event is at least 5 bytes on the
	// wire, so growing organically past the hint costs little; the hint
	// only avoids re-allocation for honest small traces.
	capHint := s.NumEvents()
	if capHint > maxCapHint {
		capHint = maxCapHint
	}
	tr := trace.New(capHint)
	for {
		e, ok := s.Next()
		if !ok {
			break
		}
		tr.Append(e)
	}
	if err := s.Err(); err != nil {
		return nil, err
	}
	m, err := s.Meta()
	if err != nil {
		return nil, err
	}
	m.Apply(tr)
	return tr, nil
}

// Dump writes a human-readable listing of tr to w: one event per line with
// its index and location name.
func Dump(w io.Writer, tr *trace.Trace) error {
	bw := bufio.NewWriter(w)
	for i, e := range tr.Events() {
		if _, err := fmt.Fprintf(bw, "%6d  %-30s %s\n", i, e, tr.LocName(e.Loc)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DumpStream writes the same listing as Dump straight from an encoded
// trace file, holding only the location-name table live — never the
// event slice. The name table sits after the events on the wire, so it
// makes two passes over r: one to skim past the events and load the
// names, one to stream events to w.
func DumpStream(w io.Writer, r io.ReadSeeker) error {
	start, err := r.Seek(0, io.SeekCurrent)
	if err != nil {
		return err
	}
	s, err := NewScanner(r)
	if err != nil {
		return err
	}
	for {
		if _, ok := s.Next(); !ok {
			break
		}
	}
	if err := s.Err(); err != nil {
		return err
	}
	m, err := s.Meta()
	if err != nil {
		return err
	}
	names := make(map[trace.Loc]string, len(m.Names))
	for _, nm := range m.Names {
		names[nm.Loc] = nm.Name
	}
	if _, err := r.Seek(start, io.SeekStart); err != nil {
		return err
	}
	s, err = NewScanner(r)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	i := 0
	for {
		e, ok := s.Next()
		if !ok {
			break
		}
		name, found := names[e.Loc]
		if !found {
			name = fmt.Sprintf("L%d", e.Loc)
		}
		if _, err := fmt.Fprintf(bw, "%6d  %-30s %s\n", i, e, name); err != nil {
			return err
		}
		i++
	}
	if err := s.Err(); err != nil {
		return err
	}
	return bw.Flush()
}
