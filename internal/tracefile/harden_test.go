package tracefile

import (
	"bytes"
	"encoding/binary"
	"errors"
	"runtime"
	"testing"

	"repro/internal/faultinject"
	"repro/trace"
)

// hostile builds a binary input from the format header plus raw uvarint
// fields — the shortest way to claim arbitrary counts to the decoder.
func hostile(fields ...uint64) []byte {
	out := []byte(Magic)
	var buf [binary.MaxVarintLen64]byte
	for _, f := range fields {
		n := binary.PutUvarint(buf[:], f)
		out = append(out, buf[:n]...)
	}
	return out
}

// hostileInputs enumerates crafted corrupt encodings, one per validated
// count or length. Shared with FuzzDecode, which registers them as
// regression seeds.
func hostileInputs() map[string][]byte {
	return map[string][]byte{
		// Event count beyond maxEvents, rejected before any allocation.
		"event-count-absurd": hostile(Version, 1<<62),
		// Event count under maxEvents but with no event data: the
		// pre-allocation must be capped and the decode must fail on the
		// missing data, not OOM.
		"event-count-truncated": hostile(Version, 1<<30),
		// Metadata section counts: zero events followed by a huge count.
		"link-count-absurd": hostile(Version, 0, 1<<40),
		"vol-count-absurd":  hostile(Version, 0, 0, 1<<40),
		"init-count-absurd": hostile(Version, 0, 0, 0, 1<<40),
		"name-count-absurd": hostile(Version, 0, 0, 0, 0, 1<<40),
		// A notify link referencing an event that was never decoded.
		"link-index-out-of-range": hostile(Version, 0, 1, 5, 0, 0),
		// A link index so large that truncating it to int would wrap
		// negative — must be rejected as out of range instead.
		"link-index-wraps-negative": hostile(Version, 0, 1, 1<<63, 0, 0),
		// One location name claiming a gigantic length.
		"name-length-absurd": hostile(Version, 0, 0, 0, 0, 1, 7, 1<<30),
	}
}

// TestDecodeHostileInputs is the hardening acceptance test: every crafted
// corrupt input must produce a decode error — and the huge-count cases
// must do so within bounded memory, not by allocating what the corrupt
// header claims.
func TestDecodeHostileInputs(t *testing.T) {
	for name, data := range hostileInputs() {
		t.Run(name, func(t *testing.T) {
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			tr, err := Decode(bytes.NewReader(data))
			runtime.ReadMemStats(&after)
			if err == nil {
				t.Fatalf("Decode accepted hostile input (%d events)", tr.Len())
			}
			if !errors.Is(err, ErrFormat) {
				t.Fatalf("Decode error = %v, want ErrFormat", err)
			}
			// The absurd counts claim gigabytes; a hardened decoder
			// allocates at most the capped pre-size (~a few MB).
			if delta := after.TotalAlloc - before.TotalAlloc; delta > 64<<20 {
				t.Fatalf("Decode of %d-byte hostile input allocated %d bytes", len(data), delta)
			}
		})
	}
}

// TestDecodeCorruptLengthPrefix corrupts each byte of a valid encoding's
// header region (magic, version, event count) in turn: the decoder must
// return a clean error or a structurally sane trace — never panic and
// never allocate unboundedly.
func TestDecodeCorruptLengthPrefix(t *testing.T) {
	var buf bytes.Buffer
	b := trace.NewBuilder()
	b.Fork(1, 2)
	b.Write(1, 5, 1)
	b.Write(2, 5, 2)
	b.Join(1, 2)
	if err := Encode(&buf, b.Trace()); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	for off := 0; off < len(valid) && off < 8; off++ {
		data := faultinject.Corrupt(valid, off, 0xFF)
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		tr, err := Decode(bytes.NewReader(data))
		runtime.ReadMemStats(&after)
		if err == nil {
			// A corruption that still decodes must yield a usable trace.
			_ = tr.ComputeStats()
		} else if !errors.Is(err, ErrFormat) {
			t.Fatalf("offset %d: error = %v, want ErrFormat", off, err)
		}
		if delta := after.TotalAlloc - before.TotalAlloc; delta > 64<<20 {
			t.Fatalf("offset %d: corrupt prefix allocated %d bytes", off, delta)
		}
	}
}

// TestDecodeLinkBoundsRejected pins the link-index validation: an
// otherwise well-formed encoding whose notify link points past the event
// section must be rejected, and the huge-index variant must not wrap to a
// negative int index.
func TestDecodeLinkBoundsRejected(t *testing.T) {
	for _, name := range []string{"link-index-out-of-range", "link-index-wraps-negative"} {
		if _, err := Decode(bytes.NewReader(hostileInputs()[name])); !errors.Is(err, ErrFormat) {
			t.Errorf("%s: error = %v, want ErrFormat", name, err)
		}
	}
}
