package tracefile

import (
	"fmt"
	"io"
)

// ChunkedMagic identifies the chunked columnar format implemented by
// internal/tracev2. The constant lives here, next to the legacy Magic,
// so format sniffing needs only this package; tracev2 imports tracefile
// (for the canonical byte stream its content hash covers), never the
// reverse.
const ChunkedMagic = "RVC2"

// Format names an on-disk trace encoding.
type Format int

const (
	// FormatUnknown is returned for files matching no known magic.
	FormatUnknown Format = iota
	// FormatLegacy is the row-oriented varint format of this package.
	FormatLegacy
	// FormatChunked is the columnar chunked format of internal/tracev2.
	FormatChunked
)

// String names the format for diagnostics.
func (f Format) String() string {
	switch f {
	case FormatLegacy:
		return "legacy"
	case FormatChunked:
		return "chunked"
	default:
		return "unknown"
	}
}

// SniffHeader classifies the first bytes of a trace file.
func SniffHeader(p []byte) Format {
	if len(p) >= len(Magic) && string(p[:len(Magic)]) == Magic {
		return FormatLegacy
	}
	if len(p) >= len(ChunkedMagic) && string(p[:len(ChunkedMagic)]) == ChunkedMagic {
		return FormatChunked
	}
	return FormatUnknown
}

// Sniff reads just enough of r to classify its format, then seeks back
// to where it started so the matching decoder sees the full stream.
func Sniff(r io.ReadSeeker) (Format, error) {
	start, err := r.Seek(0, io.SeekCurrent)
	if err != nil {
		return FormatUnknown, err
	}
	hdr := make([]byte, len(Magic))
	n, err := io.ReadFull(r, hdr)
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return FormatUnknown, err
	}
	if _, serr := r.Seek(start, io.SeekStart); serr != nil {
		return FormatUnknown, serr
	}
	f := SniffHeader(hdr[:n])
	if f == FormatUnknown {
		return f, fmt.Errorf("%w: unrecognised magic", ErrFormat)
	}
	return f, nil
}
