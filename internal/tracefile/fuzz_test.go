package tracefile

import (
	"bytes"
	"testing"

	"repro/internal/workloads"
	"repro/trace"
)

// FuzzDecode hardens the binary decoder against corrupt input: it must
// either return ErrFormat-ish errors or a structurally sane trace — never
// panic or over-allocate.
func FuzzDecode(f *testing.F) {
	// Seed with valid encodings and some mutants.
	var buf bytes.Buffer
	b := trace.NewBuilder()
	b.Fork(1, 2)
	b.Begin(2)
	b.Acquire(2, 9)
	b.Write(2, 5, 42)
	b.Release(2, 9)
	b.End(2)
	b.Join(1, 2)
	if err := Encode(&buf, b.Trace()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	spec := workloads.Rows()[0]
	tr, _ := workloads.Build(spec)
	buf.Reset()
	if err := Encode(&buf, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("RVPT"))
	f.Add([]byte("RVPT\x01\xff\xff\xff\xff\xff\xff\xff\xff\x7f"))
	f.Add([]byte{})
	// Regression seeds: crafted hostile inputs that previously drove
	// unbounded allocations or index wrap-around (see harden_test.go).
	for _, data := range hostileInputs() {
		f.Add(data)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successful decode must produce a trace whose accessors work.
		_ = tr.ComputeStats()
		for _, ln := range tr.NotifyLinks() {
			if ln.Notify < 0 || ln.Release < 0 || ln.Acquire < 0 {
				t.Fatalf("negative link indices decoded: %+v", ln)
			}
		}
		// Re-encoding must succeed.
		var out bytes.Buffer
		if err := Encode(&out, tr); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
	})
}
