package tracefile

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/workloads"
	"repro/trace"
)

func roundTrip(t *testing.T, tr *trace.Trace) *trace.Trace {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

func TestRoundTripFigure1(t *testing.T) {
	tr := fixtures.Figure1()
	got := roundTrip(t, tr)
	if got.Len() != tr.Len() {
		t.Fatalf("length %d, want %d", got.Len(), tr.Len())
	}
	for i := 0; i < tr.Len(); i++ {
		if got.Event(i) != tr.Event(i) {
			t.Errorf("event %d = %v, want %v", i, got.Event(i), tr.Event(i))
		}
	}
	if err := got.Validate(); err != nil {
		t.Errorf("decoded trace invalid: %v", err)
	}
}

func TestRoundTripMetadata(t *testing.T) {
	b := trace.NewBuilder()
	b.Volatile(7)
	b.Initial(5, 42)
	b.AtNamed(3, "Server.java:120").Write(1, 5, 42)
	b.At(4).ReadV(2, 7, 0)
	b.Acquire(1, 9).Release(1, 9)
	tr := b.Trace()
	got := roundTrip(t, tr)
	if !got.Volatile(7) {
		t.Error("volatile flag lost")
	}
	if got.Initial(5) != 42 {
		t.Error("initial value lost")
	}
	if got.LocName(3) != "Server.java:120" {
		t.Errorf("loc name lost: %q", got.LocName(3))
	}
}

func TestRoundTripNotifyLinks(t *testing.T) {
	b := trace.NewBuilder()
	b.Acquire(1, 9)
	b.Wait(1, 9, func(b *trace.Builder) int {
		n := b.Mark()
		b.Write(2, 5, 1)
		return n
	})
	b.Release(1, 9)
	tr := b.Trace()
	got := roundTrip(t, tr)
	if len(got.NotifyLinks()) != 1 {
		t.Fatalf("links = %d, want 1", len(got.NotifyLinks()))
	}
	if got.NotifyLinks()[0] != tr.NotifyLinks()[0] {
		t.Errorf("link = %+v, want %+v", got.NotifyLinks()[0], tr.NotifyLinks()[0])
	}
}

func TestRoundTripWorkload(t *testing.T) {
	spec := workloads.Rows()[4] // bufwriter
	tr, _ := workloads.Build(spec)
	got := roundTrip(t, tr)
	if got.Len() != tr.Len() {
		t.Fatalf("length %d, want %d", got.Len(), tr.Len())
	}
	s1, s2 := tr.ComputeStats(), got.ComputeStats()
	if s1 != s2 {
		t.Errorf("stats differ: %+v vs %+v", s1, s2)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("JUNK"),
		[]byte("RVPT"),                 // truncated after magic
		[]byte("RVPT\x02"),             // bad version
		[]byte("RVPT\x01\x05"),         // five events promised, none present
		[]byte("RVPT\x01\x01\x02\x63"), // truncated event
	}
	for i, in := range cases {
		if _, err := Decode(bytes.NewReader(in)); !errors.Is(err, ErrFormat) {
			t.Errorf("case %d: err = %v, want ErrFormat", i, err)
		}
	}
}

func TestDump(t *testing.T) {
	tr := fixtures.Figure1()
	var buf bytes.Buffer
	if err := Dump(&buf, tr); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fork(t1, t2)") {
		t.Errorf("dump missing fork event:\n%s", out)
	}
	if got := len(strings.Split(strings.TrimSpace(out), "\n")); got != tr.Len() {
		t.Errorf("dump lines = %d, want %d", got, tr.Len())
	}
}

// TestDumpStreamMatchesDump: the streaming dump (two passes over the
// file, bounded memory) must render byte-identical output to the
// in-memory Dump over the decoded trace.
func TestDumpStreamMatchesDump(t *testing.T) {
	traces := map[string]*trace.Trace{
		"figure1": fixtures.Figure1(),
		"empty":   trace.NewBuilder().Trace(),
	}
	spec := workloads.Rows()[4]
	traces["workload"], _ = workloads.Build(spec)
	for name, tr := range traces {
		var enc bytes.Buffer
		if err := Encode(&enc, tr); err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		if err := Dump(&want, tr); err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		if err := DumpStream(&got, bytes.NewReader(enc.Bytes())); err != nil {
			t.Fatalf("%s: DumpStream: %v", name, err)
		}
		if want.String() != got.String() {
			t.Errorf("%s: DumpStream differs from Dump", name)
		}
	}
}

// TestScannerMeta: the streaming scanner must surface the same events
// and metadata Decode does.
func TestScannerMeta(t *testing.T) {
	b := trace.NewBuilder()
	b.Volatile(7)
	b.Initial(5, 42)
	b.AtNamed(3, "Server.java:120").Write(1, 5, 42)
	b.At(4).ReadV(2, 7, 0)
	b.Acquire(1, 9)
	b.Wait(1, 9, func(b *trace.Builder) int {
		n := b.Mark()
		b.Write(2, 5, 1)
		return n
	})
	b.Release(1, 9)
	tr := b.Trace()
	var enc bytes.Buffer
	if err := Encode(&enc, tr); err != nil {
		t.Fatal(err)
	}
	s, err := NewScanner(bytes.NewReader(enc.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if int(s.NumEvents()) != tr.Len() {
		t.Fatalf("NumEvents = %d, want %d", s.NumEvents(), tr.Len())
	}
	i := 0
	for {
		ev, ok := s.Next()
		if !ok {
			break
		}
		if ev != tr.Event(i) {
			t.Fatalf("event %d = %v, want %v", i, ev, tr.Event(i))
		}
		i++
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if i != tr.Len() {
		t.Fatalf("scanned %d events, want %d", i, tr.Len())
	}
	m, err := s.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Links) != 1 || len(m.Volatiles) != 1 || len(m.Initials) != 1 || len(m.Names) != 1 {
		t.Fatalf("meta = %d links, %d volatiles, %d initials, %d names",
			len(m.Links), len(m.Volatiles), len(m.Initials), len(m.Names))
	}
	if m.Links[0] != tr.NotifyLinks()[0] {
		t.Errorf("link = %+v, want %+v", m.Links[0], tr.NotifyLinks()[0])
	}
}
