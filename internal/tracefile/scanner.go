package tracefile

import (
	"bufio"
	"fmt"
	"io"

	"repro/trace"
)

// Scanner decodes a binary trace incrementally: header first, then one
// event per Next call, then the trailing metadata sections via Meta. It
// holds O(1) state per event — the out-of-core conversion path
// (internal/tracev2.Convert) and the streaming dump both ride on it, so
// multi-GB legacy traces never need a whole-trace *trace.Trace. Decode
// is itself a Scanner loop; the two cannot drift.
type Scanner struct {
	r   *reader
	n   uint64 // declared event count
	i   uint64 // events consumed so far
	err error
}

// NewScanner reads the header (magic, version, event count) from r and
// returns a scanner positioned at the first event. Header validation
// matches Decode: hostile counts fail with ErrFormat before any
// per-event work.
func NewScanner(r io.Reader) (*Scanner, error) {
	br := &reader{r: bufio.NewReader(r)}
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br.r, magic); err != nil || string(magic) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	ver, err := br.uvarint()
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrFormat, ver)
	}
	n, err := br.uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxEvents {
		return nil, fmt.Errorf("%w: implausible event count %d", ErrFormat, n)
	}
	return &Scanner{r: br, n: n}, nil
}

// NumEvents returns the header's declared event count. The stream may
// still turn out truncated; Next/Err report that.
func (s *Scanner) NumEvents() int { return int(s.n) }

// Next returns the next event. ok is false once all declared events are
// consumed or on a decode error (check Err to distinguish).
func (s *Scanner) Next() (e trace.Event, ok bool) {
	if s.err != nil || s.i >= s.n {
		return trace.Event{}, false
	}
	tid, err := s.r.varint()
	if err != nil {
		s.err = err
		return trace.Event{}, false
	}
	op, err := s.r.r.ReadByte()
	if err != nil {
		s.err = fmt.Errorf("%w: %v", ErrFormat, err)
		return trace.Event{}, false
	}
	addr, err := s.r.uvarint()
	if err != nil {
		s.err = err
		return trace.Event{}, false
	}
	val, err := s.r.varint()
	if err != nil {
		s.err = err
		return trace.Event{}, false
	}
	loc, err := s.r.uvarint()
	if err != nil {
		s.err = err
		return trace.Event{}, false
	}
	s.i++
	return trace.Event{
		Tid:   trace.TID(tid),
		Op:    trace.Op(op),
		Addr:  trace.Addr(addr),
		Value: val,
		Loc:   trace.Loc(loc),
	}, true
}

// Err returns the first decode error encountered by Next, if any.
func (s *Scanner) Err() error { return s.err }

// Meta holds the trailing metadata sections of a trace file in wire
// order.
type Meta struct {
	Links     []trace.NotifyLink
	Volatiles []trace.Addr
	Initials  []AddrValue
	Names     []LocNameEntry
}

// Meta reads the metadata sections that follow the event stream. It may
// only be called after Next has returned false with a nil Err — the
// sections sit directly after the last event on the wire. Link indices
// are validated against the declared event count, exactly as Decode
// does.
func (s *Scanner) Meta() (*Meta, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.i < s.n {
		return nil, fmt.Errorf("%w: metadata read before event stream drained", ErrFormat)
	}
	var m Meta
	nLinks, err := s.r.uvarint()
	if err != nil {
		return nil, err
	}
	if nLinks > maxMeta {
		return nil, fmt.Errorf("%w: implausible notify-link count %d", ErrFormat, nLinks)
	}
	for i := uint64(0); i < nLinks; i++ {
		ntf, err := s.r.uvarint()
		if err != nil {
			return nil, err
		}
		rel, err := s.r.uvarint()
		if err != nil {
			return nil, err
		}
		acq, err := s.r.uvarint()
		if err != nil {
			return nil, err
		}
		// Out-of-range values double as a guard against uint64→int
		// truncation wrapping hostile indices negative.
		if ntf >= s.n || rel >= s.n || acq >= s.n {
			return nil, fmt.Errorf("%w: notify link index out of range", ErrFormat)
		}
		m.Links = append(m.Links, trace.NotifyLink{
			Notify: int(ntf), Release: int(rel), Acquire: int(acq),
		})
	}
	nVols, err := s.r.uvarint()
	if err != nil {
		return nil, err
	}
	if nVols > maxMeta {
		return nil, fmt.Errorf("%w: implausible volatile count %d", ErrFormat, nVols)
	}
	for i := uint64(0); i < nVols; i++ {
		a, err := s.r.uvarint()
		if err != nil {
			return nil, err
		}
		m.Volatiles = append(m.Volatiles, trace.Addr(a))
	}
	nInits, err := s.r.uvarint()
	if err != nil {
		return nil, err
	}
	if nInits > maxMeta {
		return nil, fmt.Errorf("%w: implausible initial-value count %d", ErrFormat, nInits)
	}
	for i := uint64(0); i < nInits; i++ {
		a, err := s.r.uvarint()
		if err != nil {
			return nil, err
		}
		v, err := s.r.varint()
		if err != nil {
			return nil, err
		}
		m.Initials = append(m.Initials, AddrValue{Addr: trace.Addr(a), Value: v})
	}
	nNames, err := s.r.uvarint()
	if err != nil {
		return nil, err
	}
	if nNames > maxMeta {
		return nil, fmt.Errorf("%w: implausible name count %d", ErrFormat, nNames)
	}
	for i := uint64(0); i < nNames; i++ {
		l, err := s.r.uvarint()
		if err != nil {
			return nil, err
		}
		sz, err := s.r.uvarint()
		if err != nil {
			return nil, err
		}
		if sz > maxNameLen {
			return nil, fmt.Errorf("%w: implausible name length %d", ErrFormat, sz)
		}
		buf := make([]byte, sz)
		if _, err := io.ReadFull(s.r.r, buf); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		m.Names = append(m.Names, LocNameEntry{Loc: trace.Loc(l), Name: string(buf)})
	}
	return &m, nil
}

// Apply installs the metadata into tr.
func (m *Meta) Apply(tr *trace.Trace) {
	for _, ln := range m.Links {
		tr.AddNotifyLink(ln.Notify, ln.Release, ln.Acquire)
	}
	for _, a := range m.Volatiles {
		tr.SetVolatile(a)
	}
	for _, kv := range m.Initials {
		tr.SetInitial(kv.Addr, kv.Value)
	}
	for _, nm := range m.Names {
		tr.NameLoc(nm.Loc, nm.Name)
	}
}
