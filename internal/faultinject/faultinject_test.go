package faultinject

import (
	"bytes"
	"sync"
	"testing"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if f := in.Fire(PointSolve); f != FaultNone {
		t.Fatalf("nil.Fire = %v, want FaultNone", f)
	}
	if f := in.MaybePanic(PointWindow); f != FaultNone {
		t.Fatalf("nil.MaybePanic = %v, want FaultNone", f)
	}
	if n := in.Hits(PointSolve); n != 0 {
		t.Fatalf("nil.Hits = %d, want 0", n)
	}
}

func TestScriptFiresAtExactHit(t *testing.T) {
	in := New().Script(PointSolve, 2, FaultTimeout)
	want := []Fault{FaultNone, FaultNone, FaultTimeout, FaultNone}
	for i, w := range want {
		if f := in.Fire(PointSolve); f != w {
			t.Fatalf("hit %d: Fire = %v, want %v", i, f, w)
		}
	}
	if n := in.Hits(PointSolve); n != len(want) {
		t.Fatalf("Hits = %d, want %d", n, len(want))
	}
}

func TestPointsCountIndependently(t *testing.T) {
	in := New().Script(PointWindow, 0, FaultTimeout)
	if f := in.Fire(PointSolve); f != FaultNone {
		t.Fatalf("solve hit 0 = %v, want FaultNone", f)
	}
	if f := in.Fire(PointWindow); f != FaultTimeout {
		t.Fatalf("window hit 0 = %v, want FaultTimeout", f)
	}
	if f := in.Fire(Scoped(PointWindow, 3)); f != FaultNone {
		t.Fatal("scoped point must not share the base point's script")
	}
	if n := in.Hits(Scoped(PointWindow, 3)); n != 1 {
		t.Fatalf("scoped hits = %d, want 1", n)
	}
}

func TestMaybePanicCarriesProvenance(t *testing.T) {
	in := New().Script(PointWindow, 1, FaultPanic)
	in.MaybePanic(PointWindow) // hit 0: no fault
	defer func() {
		r := recover()
		p, ok := r.(InjectedPanic)
		if !ok {
			t.Fatalf("recovered %v (%T), want InjectedPanic", r, r)
		}
		if p.Point != PointWindow || p.Hit != 1 {
			t.Fatalf("panic provenance = %+v, want {window 1}", p)
		}
		if p.Error() == "" {
			t.Fatal("InjectedPanic.Error must render")
		}
	}()
	in.MaybePanic(PointWindow)
	t.Fatal("MaybePanic did not panic on the scripted hit")
}

// TestConcurrentFiresAreSerialised checks that parallel crossings each get
// a unique hit index: exactly one goroutine observes the scripted fault.
func TestConcurrentFiresAreSerialised(t *testing.T) {
	in := New().Script(PointSolve, 50, FaultTimeout)
	const workers = 8
	const per = 100
	var hits sync.Map
	var wg sync.WaitGroup
	faults := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if in.Fire(PointSolve) == FaultTimeout {
					faults[w]++
				}
			}
			hits.Store(w, true)
		}(w)
	}
	wg.Wait()
	total := 0
	for _, n := range faults {
		total += n
	}
	if total != 1 {
		t.Fatalf("scripted fault observed %d times across workers, want exactly 1", total)
	}
	if n := in.Hits(PointSolve); n != workers*per {
		t.Fatalf("Hits = %d, want %d", n, workers*per)
	}
}

func TestCorrupt(t *testing.T) {
	orig := []byte{1, 2, 3}
	got := Corrupt(orig, 1, 0x0F)
	if !bytes.Equal(orig, []byte{1, 2, 3}) {
		t.Fatal("Corrupt mutated its input")
	}
	if !bytes.Equal(got, []byte{1, 2 ^ 0x0F, 3}) {
		t.Fatalf("Corrupt = %v", got)
	}
	// Zero mask flips every bit instead of silently no-opping.
	if got := Corrupt(orig, 0, 0); got[0] != 1^0xFF {
		t.Fatalf("zero-mask Corrupt = %v, want bit-flipped byte", got)
	}
	// Out-of-range offsets return an unmodified copy.
	if got := Corrupt(orig, 99, 0xFF); !bytes.Equal(got, orig) {
		t.Fatalf("out-of-range Corrupt = %v, want copy of input", got)
	}
}

func TestFaultString(t *testing.T) {
	for f, want := range map[Fault]string{
		FaultNone: "none", FaultPanic: "panic", FaultTimeout: "timeout", Fault(9): "fault(9)",
	} {
		if got := f.String(); got != want {
			t.Errorf("Fault(%d).String() = %q, want %q", uint8(f), got, want)
		}
	}
}
