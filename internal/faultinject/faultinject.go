// Package faultinject provides deterministic fault injection for testing
// the detection pipeline's recovery paths: panic isolation, solver-budget
// retries and decode hardening.
//
// An Injector carries a script — "at the Nth crossing of point P, inject
// fault F" — and the pipeline calls Fire at its instrumentation points. A
// nil *Injector is the production state: Fire returns FaultNone without
// locking, so shipping the hooks costs one nil check per point. Scripts
// are keyed by per-point hit counts, never by wall-clock time or
// randomness, so every injected failure is reproducible, including under
// -race and with parallel window workers (Fire is safe for concurrent
// use; concurrent hits are serialised, giving each crossing a unique hit
// index).
//
// The injector is wired through the detector Options (core.Options and
// rvpredict.Options) and is intended for tests only: injected faults make
// the detector deliberately under-report, which is exactly what the
// resilience machinery must surface, never silently absorb.
package faultinject

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
)

// Point names one instrumentation point in the pipeline.
type Point string

// Instrumentation points.
const (
	// PointSolve is crossed immediately before each solver query (races:
	// one crossing per COP solve attempt, retries included).
	PointSolve Point = "solve"
	// PointWindow is crossed at the start of each analysis window.
	PointWindow Point = "window"
	// PointDecode is crossed by tracefile decoding tests per decoded
	// section; it exists so corrupt-input scripts share the vocabulary.
	PointDecode Point = "decode"
	// PointJournalAppend is crossed once per window record appended to
	// the durable journal (internal/journal), before the record's bytes
	// are written. Crash faults here simulate process death mid-append —
	// FaultCrashTorn leaves a torn tail for recovery to truncate.
	PointJournalAppend Point = "journal_append"
	// PointReportFlush is crossed once per atomic report write
	// (journal.WriteFileAtomic), before the temp file's bytes are
	// written. Crash faults here prove the rename-last discipline: the
	// destination must never exist half-written.
	PointReportFlush Point = "report_flush"
	// PointStreamStall is crossed by the streaming daemon once per frame
	// read from a client connection. FaultTimeout makes the daemon treat
	// the read as an idle/stall timeout — the session is suspended to
	// durable state exactly as if the client had gone silent — so the
	// slow-client path is testable without real clock waits.
	PointStreamStall Point = "stream_stall"
	// PointStreamDisconnect is crossed alongside PointStreamStall, once
	// per frame read. Any scripted fault drops the connection abruptly
	// mid-stream, exercising the client's reconnect-and-resume path.
	PointStreamDisconnect Point = "stream_disconnect"
	// PointQueueSaturate is crossed once per window the streaming daemon
	// hands to the solver queue. FaultTimeout simulates sustained queue
	// saturation: the window skips the queue and is analysed in degraded
	// (sound-tier-only) mode, deterministically.
	PointQueueSaturate Point = "queue_saturate"
	// PointWorkerCrash is crossed by a fleet worker once per window
	// outcome it is about to report (internal/fleet). Crash faults kill
	// the worker mid-shard — in-process workers abort their connection,
	// re-exec workers die via CrashNow — exercising lease expiry and
	// reassignment.
	PointWorkerCrash Point = "worker_crash"
	// PointLeaseStall is crossed by a fleet worker once per heartbeat it
	// is about to send. FaultTimeout suppresses the heartbeat, so a
	// scripted run of hits makes the coordinator's lease deadline lapse
	// while the worker is still computing — the straggler/stall path,
	// without real clock waits beyond the (short, test-chosen) TTL.
	PointLeaseStall Point = "lease_stall"
	// PointResultCorrupt is crossed by a fleet worker once per result
	// frame it is about to send. Any scripted fault flips a byte in the
	// encoded outcome after its checksum was computed, so the
	// coordinator's CRC gate must reject the result and the window must
	// be re-analysed elsewhere.
	PointResultCorrupt Point = "result_corrupt"
	// PointCoordCrash is crossed by the fleet coordinator once per
	// result it has accepted and durably journaled, after the fsync and
	// before the ack. Crash faults kill the coordinator there — the
	// SIGKILL-equivalent the resume path must survive: a restarted
	// coordinator recovers every acked window from its own journal.
	PointCoordCrash Point = "coord_crash"
)

// Scoped derives a point tied to one pipeline coordinate, e.g. a window
// index. Scoped crossings are counted independently of the base point, so
// a script can target "the Nth solve attempt of window K" — deterministic
// even when windows are solved by parallel workers, because each window's
// local attempt order is fixed while the global interleaving is not.
// Instrumentation points fire both the base and the scoped point.
func Scoped(p Point, key int) Point {
	return Point(fmt.Sprintf("%s#%d", p, key))
}

// Fault is the action injected at a scripted crossing.
type Fault uint8

// Injectable faults.
const (
	// FaultNone: no fault; the crossing proceeds normally.
	FaultNone Fault = iota
	// FaultPanic: the instrumented code must panic with an InjectedPanic
	// value (detectors do this via MaybePanic), exercising the
	// panic-isolation path.
	FaultPanic
	// FaultTimeout: the instrumented code must behave as if its solver
	// budget expired at this crossing — report a timeout outcome without
	// solving — exercising the retry scheduler deterministically.
	FaultTimeout
	// FaultCrash: the instrumented code must complete the crossing's
	// durable effect (e.g. write and sync a full journal record) and
	// then terminate the process via CrashNow — simulating death between
	// two clean operations. Crash faults only make sense in re-exec
	// tests; in-process tests must never script them.
	FaultCrash
	// FaultCrashTorn: the instrumented code must make the crossing's
	// durable effect visibly incomplete (e.g. write and sync only a
	// prefix of the record's bytes) and then terminate via CrashNow —
	// simulating death mid-write, the torn tail recovery must truncate.
	FaultCrashTorn
)

// String returns the fault's name.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultPanic:
		return "panic"
	case FaultTimeout:
		return "timeout"
	case FaultCrash:
		return "crash"
	case FaultCrashTorn:
		return "crash-torn"
	}
	return fmt.Sprintf("fault(%d)", uint8(f))
}

// CrashExitCode is the process exit status of an injected crash. It is
// distinct from every status the CLI uses (0–3), so a re-exec harness can
// tell an injected death from an ordinary failure.
const CrashExitCode = 7

// CrashNow terminates the process immediately with CrashExitCode, without
// running deferred functions — the moral equivalent of SIGKILL for
// crash-recovery tests. Instrumented code calls it after honouring the
// durability semantics of FaultCrash or FaultCrashTorn.
func CrashNow() {
	os.Exit(CrashExitCode)
}

// InjectedPanic is the value panicked with by MaybePanic, carrying the
// point and hit index that triggered it so recovery tests can assert the
// exact provenance.
type InjectedPanic struct {
	Point Point
	Hit   int
}

// Error renders the panic value; InjectedPanic implements error so
// recovered values print usefully in reports.
func (p InjectedPanic) Error() string {
	return fmt.Sprintf("faultinject: injected panic at %s hit %d", p.Point, p.Hit)
}

// Injector replays a deterministic fault script. The zero value and nil
// are both valid and inject nothing; construct a live one with New.
type Injector struct {
	mu     sync.Mutex
	hits   map[Point]int
	script map[Point]map[int]Fault
}

// New returns an empty injector.
func New() *Injector {
	return &Injector{
		hits:   make(map[Point]int),
		script: make(map[Point]map[int]Fault),
	}
}

// Script arms fault f at the hit-th crossing of point p (0-based) and
// returns the injector for chaining. Re-scripting the same crossing
// overwrites the previous fault.
func (in *Injector) Script(p Point, hit int, f Fault) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.script == nil {
		in.script = make(map[Point]map[int]Fault)
	}
	if in.script[p] == nil {
		in.script[p] = make(map[int]Fault)
	}
	in.script[p][hit] = f
	return in
}

// ParseScript builds an injector from a textual script of the form
//
//	point:hit=fault[;point:hit=fault...]
//
// where fault is one of none, panic, timeout, crash or crash-torn, hit is
// the 0-based crossing index, and point may be a scoped point like
// "window#2". Empty entries are ignored. The format exists so re-exec
// crash tests can pass a script to a child process through an environment
// variable; cmd/rvpredict reads it from RVPREDICT_FAULTS.
func ParseScript(spec string) (*Injector, error) {
	in := New()
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		eq := strings.LastIndex(entry, "=")
		if eq < 0 {
			return nil, fmt.Errorf("faultinject: bad script entry %q (want point:hit=fault)", entry)
		}
		var fault Fault
		switch name := entry[eq+1:]; name {
		case "none":
			fault = FaultNone
		case "panic":
			fault = FaultPanic
		case "timeout":
			fault = FaultTimeout
		case "crash":
			fault = FaultCrash
		case "crash-torn":
			fault = FaultCrashTorn
		default:
			return nil, fmt.Errorf("faultinject: unknown fault %q in %q", name, entry)
		}
		colon := strings.LastIndex(entry[:eq], ":")
		if colon < 0 {
			return nil, fmt.Errorf("faultinject: bad script entry %q (want point:hit=fault)", entry)
		}
		hit, err := strconv.Atoi(entry[colon+1 : eq])
		if err != nil || hit < 0 {
			return nil, fmt.Errorf("faultinject: bad hit index in %q", entry)
		}
		point := Point(entry[:colon])
		if point == "" {
			return nil, fmt.Errorf("faultinject: empty point in %q", entry)
		}
		in.Script(point, hit, fault)
	}
	return in, nil
}

// Fire records one crossing of point p and returns the fault scripted for
// it, FaultNone otherwise. A nil injector always returns FaultNone.
func (in *Injector) Fire(p Point) Fault {
	f, _ := in.fire(p)
	return f
}

// MaybePanic fires point p and acts on the scripted fault: FaultPanic
// panics with an InjectedPanic, any other fault is returned for the
// caller to interpret (FaultTimeout at a solve point means "pretend the
// budget expired"). A nil injector is a no-op returning FaultNone.
func (in *Injector) MaybePanic(p Point) Fault {
	f, hit := in.fire(p)
	if f == FaultPanic {
		panic(InjectedPanic{Point: p, Hit: hit})
	}
	return f
}

// fire records one crossing and returns its scripted fault and hit index.
func (in *Injector) fire(p Point) (Fault, int) {
	if in == nil {
		return FaultNone, 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.hits == nil {
		in.hits = make(map[Point]int)
	}
	hit := in.hits[p]
	in.hits[p] = hit + 1
	return in.script[p][hit], hit
}

// Hits returns how many times point p has fired so far.
func (in *Injector) Hits(p Point) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[p]
}

// Corrupt returns a copy of data with the byte at offset XORed with mask —
// the deterministic decode-corruption helper: tests corrupt an encoded
// trace at a chosen point (a length prefix, a varint continuation bit) and
// assert the decoder fails cleanly. An out-of-range offset returns the
// input unchanged. A zero mask flips every bit (XOR 0xFF) so Corrupt never
// silently no-ops.
func Corrupt(data []byte, offset int, mask byte) []byte {
	out := append([]byte(nil), data...)
	if offset < 0 || offset >= len(out) {
		return out
	}
	if mask == 0 {
		mask = 0xFF
	}
	out[offset] ^= mask
	return out
}
