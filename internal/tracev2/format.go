// Package tracev2 implements the chunked, columnar, mmap-friendly
// on-disk trace format — the out-of-core counterpart to the legacy
// row-oriented format in internal/tracefile. The legacy decoder
// materialises the whole trace before the first window is cut, so peak
// memory scales with trace length; this format keeps events on disk in
// fixed-capacity chunks and lets the reader materialise one window at a
// time, holding O(window + chunk) events live regardless of trace size
// (the paper's real workloads reach 14.8M events).
//
// # File layout
//
//	"RVC2" ‖ uvarint(version=2)
//	chunk*                       event data, fixed capacity per chunk
//	meta                         links ‖ volatiles ‖ initials ‖ locnames
//	footer                       directory + stats + content hash
//	tail                         fixed 12 bytes, locates the footer
//
// Each chunk is columnar with per-chunk dictionaries:
//
//	uvarint(nEvents)
//	thread dict:   uvarint(count) ‖ varint(tid)…        first-use order
//	variable dict: uvarint(count) ‖ uvarint(addr)…      access addresses
//	lock dict:     uvarint(count) ‖ uvarint(addr)…      acquire/release
//	location dict: uvarint(count) ‖ uvarint(loc)…
//	ops column:    nEvents raw bytes                    decoded first
//	tid column:    uvarint(thread-dict index) per event
//	addr column:   access → var-dict index, acquire/release → lock-dict
//	               index, other ops → raw uvarint address
//	value column:  varint per event
//	loc column:    uvarint(loc-dict index) per event
//
// Every chunk except the last holds exactly chunkSize events, so random
// access to event i touches only chunk i/chunkSize. The footer's chunk
// directory carries each chunk's byte offset, length, event count and a
// min/max block (thread, variable and lock ranges) so shard workers and
// future index scans can skip chunks without decoding them.
//
// The metadata block reuses the legacy per-section element encodings
// (notify links, volatile addresses, initial values, location names) —
// it is small (alphabet-sized, not trace-sized) and decoded eagerly.
//
// The footer is:
//
//	uvarint(totalEvents) ‖ uvarint(chunkSize) ‖ uvarint(chunkCount)
//	directory entry per chunk:
//	  uvarint(offset) ‖ uvarint(byteLen) ‖ uvarint(events) ‖
//	  varint(minTid) ‖ varint(maxTid) ‖
//	  uvarint(minVar) ‖ uvarint(maxVar) ‖
//	  uvarint(minLock) ‖ uvarint(maxLock) ‖
//	  uvarint(crc32c(chunk bytes))                 (added in version 2)
//	uvarint(metaOff) ‖ uvarint(metaLen)
//	stats: uvarint ×7 (threads, events, accesses, syncs, branches,
//	       locks, shared) — the Table 1 columns, precomputed at write
//	       time so readers never scan the file for Stats()
//	contentHash[32]
//
// contentHash is the SHA-256 of the trace's canonical legacy encoding
// (the exact byte stream tracefile.Encode produces), NOT of this file's
// bytes. journal.TraceFingerprint hashes the same stream, so a journal
// written against a chunked trace binds to the identical fingerprint as
// one written against the legacy file — resume, crash recovery and
// shard-merge all work across formats unchanged.
//
// The 12-byte tail is fixed-size so the footer can be located from the
// end of the file without any forward scan:
//
//	uint32le(footerLen) ‖ uint32le(crc32c(footer)) ‖ "RVC2"
//
// Like the legacy decoder, Open/NewReader are safe on hostile input:
// every count, offset and dictionary index is validated before it
// drives an allocation or a slice access, and corruption yields
// ErrFormat in bounded memory, never a panic or an OOM (see
// harden_test.go and FuzzChunkDecode).
package tracev2

import (
	"errors"
	"fmt"
)

// Magic and Version identify the chunked format. The magic constant is
// mirrored as tracefile.ChunkedMagic so format sniffing needs only the
// tracefile package. Version 2 added a crc32c per directory entry,
// covering the chunk's encoded bytes: chunk data sits outside the
// footer checksum, so without it a torn or bit-flipped chunk is only
// caught if it happens to break structural validation. Version 1 files
// are rejected as ErrFormat (regenerate with Convert — the format is a
// cache of the canonical legacy encoding, never the source of truth).
const (
	Magic   = "RVC2"
	Version = 2
)

// DefaultChunkSize is the event capacity of a chunk when the writer is
// not told otherwise: large enough that dictionary amortisation wins,
// small enough that one decoded chunk (~24 B/event in memory) stays a
// couple of MB.
const DefaultChunkSize = 1 << 16

// tailLen is the fixed byte length of the end-of-file tail:
// uint32 footer length, uint32 footer CRC, 4-byte magic.
const tailLen = 12

// headerLen is the fixed byte length of the file header: 4-byte magic
// plus the single-byte uvarint of version 1.
const headerLen = len(Magic) + 1

// Decode limits, in the spirit of tracefile's: hostile inputs can claim
// arbitrary counts in a few bytes, so every count is validated before
// it drives an allocation or a long loop. The caps sit far above
// anything the writer produces.
const (
	// maxEvents bounds the footer's declared total event count.
	maxEvents = 1 << 31
	// maxChunkSize bounds the declared per-chunk event capacity (and so
	// the decode buffer one chunk can demand).
	maxChunkSize = 1 << 24
	// maxChunks bounds the chunk directory length.
	maxChunks = 1 << 24
	// maxMeta bounds each metadata section's element count.
	maxMeta = 1 << 24
	// maxNameLen bounds one location name's byte length.
	maxNameLen = 1 << 16
)

// ErrFormat reports a malformed chunked trace file.
var ErrFormat = errors.New("tracev2: malformed input")

// ChunkError locates a chunk-level decode failure: which directory
// entry failed and where its bytes start in the file. Chunk decoding is
// lazy, so corruption inside a chunk only surfaces when that chunk is
// first touched — long after Open succeeded — and the caller that hits
// it (a fleet worker analysing a shipped trace, say) needs to report
// *which* chunk of the file was torn, not just that some byte somewhere
// was. It wraps the underlying cause, so errors.Is(err, ErrFormat)
// still matches.
type ChunkError struct {
	// Chunk is the failing chunk's directory index.
	Chunk int
	// Offset is the byte offset of the chunk's encoding in the file.
	Offset int64
	// Err is the underlying failure (a CRC mismatch or a structural
	// validation error, both wrapping ErrFormat).
	Err error
}

func (e *ChunkError) Error() string {
	return fmt.Sprintf("tracev2: chunk %d at offset %d: %v", e.Chunk, e.Offset, e.Err)
}

func (e *ChunkError) Unwrap() error { return e.Err }
