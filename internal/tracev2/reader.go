package tracev2

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/telemetry"
	"repro/trace"
)

// byteReader decodes varints from an in-memory byte slice with bounds
// checks that degrade to ErrFormat, never a panic.
type byteReader struct {
	buf []byte
	off int
}

func (b *byteReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(b.buf[b.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated uvarint", ErrFormat)
	}
	b.off += n
	return v, nil
}

func (b *byteReader) varint() (int64, error) {
	v, n := binary.Varint(b.buf[b.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated varint", ErrFormat)
	}
	b.off += n
	return v, nil
}

func (b *byteReader) bytes(n int) ([]byte, error) {
	if n < 0 || b.off+n > len(b.buf) {
		return nil, fmt.Errorf("%w: truncated byte run", ErrFormat)
	}
	p := b.buf[b.off : b.off+n]
	b.off += n
	return p, nil
}

// chunkCacheSlots is the random-access decode cache size. Report
// rendering touches a handful of windows' worth of events; four decoded
// chunks cover the typical access locality while keeping the cache's
// live heap a few MB.
const chunkCacheSlots = 4

type cacheEntry struct {
	idx    int // chunk index, -1 when empty
	events []trace.Event
	tick   uint64
}

// Reader gives random and windowed access to a chunked trace file
// without ever materialising it: the raw bytes stay on disk (mmapped
// when the platform supports it) and only decoded chunks and windows
// are live. The footer, directory and metadata block are decoded
// eagerly at Open — they are alphabet-sized, not trace-sized.
//
// A Reader is not safe for concurrent use: the chunk cache and the
// window scratch buffers are single-threaded state, matching the
// sequential out-of-core driver.
type Reader struct {
	data      []byte
	unmap     func() error
	mapped    int64 // bytes mmapped (0 when read into memory)
	chunkSize int
	total     int
	dir       []chunkDir

	links     []trace.NotifyLink
	volatiles map[trace.Addr]bool
	initials  map[trace.Addr]int64
	names     map[trace.Loc]string
	stats     trace.Stats
	hash      [sha256.Size]byte

	cache [chunkCacheSlots]cacheEntry
	tick  uint64
	col   *telemetry.Collector
}

// Open maps (or, on platforms without mmap, reads) the chunked trace
// file at path and validates its structure.
func Open(path string) (*Reader, error) {
	data, unmap, mapped, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	r, err := NewReader(data)
	if err != nil {
		if unmap != nil {
			unmap()
		}
		return nil, err
	}
	r.unmap = unmap
	r.mapped = mapped
	return r, nil
}

// NewReader validates a chunked trace held in memory. The Reader
// borrows data; the caller must keep it alive and unmodified.
func NewReader(data []byte) (*Reader, error) {
	if len(data) < headerLen+tailLen {
		return nil, fmt.Errorf("%w: file too short", ErrFormat)
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	ver, n := binary.Uvarint(data[len(Magic):])
	if n <= 0 || ver != Version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrFormat, ver)
	}

	// Locate and checksum the footer through the fixed-size tail.
	tail := data[len(data)-tailLen:]
	if string(tail[8:12]) != Magic {
		return nil, fmt.Errorf("%w: bad tail magic", ErrFormat)
	}
	footerLen := int(binary.LittleEndian.Uint32(tail[0:4]))
	footerCRC := binary.LittleEndian.Uint32(tail[4:8])
	footerEnd := len(data) - tailLen
	if footerLen <= 0 || footerLen > footerEnd-headerLen {
		return nil, fmt.Errorf("%w: implausible footer length %d", ErrFormat, footerLen)
	}
	footer := data[footerEnd-footerLen : footerEnd]
	if crc32.Checksum(footer, crcTable) != footerCRC {
		return nil, fmt.Errorf("%w: footer checksum mismatch", ErrFormat)
	}

	r := &Reader{data: data}
	for i := range r.cache {
		r.cache[i].idx = -1
	}
	if err := r.parseFooter(footer, uint64(footerEnd-footerLen)); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Reader) parseFooter(footer []byte, footerOff uint64) error {
	b := &byteReader{buf: footer}
	total, err := b.uvarint()
	if err != nil {
		return err
	}
	if total > maxEvents {
		return fmt.Errorf("%w: implausible event count %d", ErrFormat, total)
	}
	chunkSize, err := b.uvarint()
	if err != nil {
		return err
	}
	if chunkSize == 0 || chunkSize > maxChunkSize {
		return fmt.Errorf("%w: implausible chunk size %d", ErrFormat, chunkSize)
	}
	chunkCount, err := b.uvarint()
	if err != nil {
		return err
	}
	if chunkCount > maxChunks {
		return fmt.Errorf("%w: implausible chunk count %d", ErrFormat, chunkCount)
	}
	// Fixed-capacity chunks make random access a division: the directory
	// must describe exactly ceil(total/chunkSize) chunks, all full except
	// the last.
	wantChunks := (total + chunkSize - 1) / chunkSize
	if chunkCount != wantChunks {
		return fmt.Errorf("%w: directory has %d chunks, %d events at chunk size %d need %d",
			ErrFormat, chunkCount, total, chunkSize, wantChunks)
	}
	r.total = int(total)
	r.chunkSize = int(chunkSize)
	r.dir = make([]chunkDir, 0, chunkCount)
	var sum uint64
	prevEnd := uint64(headerLen)
	for i := uint64(0); i < chunkCount; i++ {
		var d chunkDir
		if d.off, err = b.uvarint(); err != nil {
			return err
		}
		if d.length, err = b.uvarint(); err != nil {
			return err
		}
		ev, err := b.uvarint()
		if err != nil {
			return err
		}
		want := chunkSize
		if i == chunkCount-1 {
			want = total - (chunkCount-1)*chunkSize
		}
		if ev != want {
			return fmt.Errorf("%w: chunk %d declares %d events, want %d", ErrFormat, i, ev, want)
		}
		d.events = int(ev)
		minTid, err := b.varint()
		if err != nil {
			return err
		}
		maxTid, err := b.varint()
		if err != nil {
			return err
		}
		d.minTid, d.maxTid = trace.TID(minTid), trace.TID(maxTid)
		minVar, err := b.uvarint()
		if err != nil {
			return err
		}
		maxVar, err := b.uvarint()
		if err != nil {
			return err
		}
		d.minVar, d.maxVar = trace.Addr(minVar), trace.Addr(maxVar)
		minLock, err := b.uvarint()
		if err != nil {
			return err
		}
		maxLock, err := b.uvarint()
		if err != nil {
			return err
		}
		d.minLock, d.maxLock = trace.Addr(minLock), trace.Addr(maxLock)
		crc, err := b.uvarint()
		if err != nil {
			return err
		}
		if crc > math.MaxUint32 {
			return fmt.Errorf("%w: chunk %d checksum out of range", ErrFormat, i)
		}
		d.crc = uint32(crc)
		// Chunks must tile the region between header and metadata in
		// order, with no overlap — a lying directory cannot alias chunk
		// bytes or point into the footer.
		if d.off != prevEnd || d.length == 0 || d.off+d.length < d.off {
			return fmt.Errorf("%w: chunk %d directory entry out of place", ErrFormat, i)
		}
		prevEnd = d.off + d.length
		if prevEnd > footerOff {
			return fmt.Errorf("%w: chunk %d extends past metadata", ErrFormat, i)
		}
		sum += ev
		r.dir = append(r.dir, d)
	}
	if sum != total {
		return fmt.Errorf("%w: directory events sum %d != total %d", ErrFormat, sum, total)
	}
	metaOff, err := b.uvarint()
	if err != nil {
		return err
	}
	metaLen, err := b.uvarint()
	if err != nil {
		return err
	}
	if metaOff != prevEnd || metaOff+metaLen < metaOff || metaOff+metaLen > footerOff {
		return fmt.Errorf("%w: metadata block out of place", ErrFormat)
	}
	var st [7]uint64
	for i := range st {
		if st[i], err = b.uvarint(); err != nil {
			return err
		}
		if st[i] > maxEvents {
			return fmt.Errorf("%w: implausible stats field %d", ErrFormat, st[i])
		}
	}
	r.stats = trace.Stats{
		Threads: int(st[0]), Events: int(st[1]), Accesses: int(st[2]),
		Syncs: int(st[3]), Branches: int(st[4]), Locks: int(st[5]), Shared: int(st[6]),
	}
	hash, err := b.bytes(sha256.Size)
	if err != nil {
		return err
	}
	copy(r.hash[:], hash)
	if b.off != len(b.buf) {
		return fmt.Errorf("%w: %d trailing footer bytes", ErrFormat, len(b.buf)-b.off)
	}
	return r.parseMeta(r.data[metaOff : metaOff+metaLen])
}

func (r *Reader) parseMeta(meta []byte) error {
	b := &byteReader{buf: meta}
	nLinks, err := b.uvarint()
	if err != nil {
		return err
	}
	if nLinks > maxMeta {
		return fmt.Errorf("%w: implausible notify-link count %d", ErrFormat, nLinks)
	}
	for i := uint64(0); i < nLinks; i++ {
		ntf, err := b.uvarint()
		if err != nil {
			return err
		}
		rel, err := b.uvarint()
		if err != nil {
			return err
		}
		acq, err := b.uvarint()
		if err != nil {
			return err
		}
		if ntf >= uint64(r.total) || rel >= uint64(r.total) || acq >= uint64(r.total) {
			return fmt.Errorf("%w: notify link index out of range", ErrFormat)
		}
		r.links = append(r.links, trace.NotifyLink{
			Notify: int(ntf), Release: int(rel), Acquire: int(acq),
		})
	}
	nVols, err := b.uvarint()
	if err != nil {
		return err
	}
	if nVols > maxMeta {
		return fmt.Errorf("%w: implausible volatile count %d", ErrFormat, nVols)
	}
	r.volatiles = make(map[trace.Addr]bool, nVols)
	for i := uint64(0); i < nVols; i++ {
		a, err := b.uvarint()
		if err != nil {
			return err
		}
		r.volatiles[trace.Addr(a)] = true
	}
	nInits, err := b.uvarint()
	if err != nil {
		return err
	}
	if nInits > maxMeta {
		return fmt.Errorf("%w: implausible initial-value count %d", ErrFormat, nInits)
	}
	r.initials = make(map[trace.Addr]int64, nInits)
	for i := uint64(0); i < nInits; i++ {
		a, err := b.uvarint()
		if err != nil {
			return err
		}
		v, err := b.varint()
		if err != nil {
			return err
		}
		r.initials[trace.Addr(a)] = v
	}
	nNames, err := b.uvarint()
	if err != nil {
		return err
	}
	if nNames > maxMeta {
		return fmt.Errorf("%w: implausible name count %d", ErrFormat, nNames)
	}
	r.names = make(map[trace.Loc]string, nNames)
	for i := uint64(0); i < nNames; i++ {
		l, err := b.uvarint()
		if err != nil {
			return err
		}
		sz, err := b.uvarint()
		if err != nil {
			return err
		}
		if sz > maxNameLen {
			return fmt.Errorf("%w: implausible name length %d", ErrFormat, sz)
		}
		name, err := b.bytes(int(sz))
		if err != nil {
			return err
		}
		r.names[trace.Loc(l)] = string(name)
	}
	if b.off != len(b.buf) {
		return fmt.Errorf("%w: %d trailing metadata bytes", ErrFormat, len(b.buf)-b.off)
	}
	return nil
}

// Close releases the file mapping, if any. The Reader must not be used
// afterwards.
func (r *Reader) Close() error {
	if r.unmap == nil {
		return nil
	}
	unmap := r.unmap
	r.unmap = nil
	r.data = nil
	for i := range r.cache {
		r.cache[i] = cacheEntry{idx: -1}
	}
	return unmap()
}

// AttachTelemetry points chunk-cache and mmap accounting at c.
func (r *Reader) AttachTelemetry(c *telemetry.Collector) {
	r.col = c
	c.SetMmapBytes(r.mapped)
}

// NumEvents returns the trace's event count.
func (r *Reader) NumEvents() int { return r.total }

// NumChunks returns the number of event chunks in the file.
func (r *Reader) NumChunks() int { return len(r.dir) }

// Stats returns the trace's precomputed summary metrics — identical to
// ComputeStats over the materialised trace, but read from the footer.
func (r *Reader) Stats() trace.Stats { return r.stats }

// ContentHash returns the SHA-256 of the trace's canonical legacy
// encoding: the value journal.TraceFingerprint computes, so journals
// bind to chunked traces with the same fingerprint as legacy ones.
func (r *Reader) ContentHash() [sha256.Size]byte { return r.hash }

// LocName renders a program location like trace.Trace.LocName.
func (r *Reader) LocName(l trace.Loc) string {
	if name, ok := r.names[l]; ok {
		return name
	}
	return fmt.Sprintf("L%d", l)
}

// Event returns the event at whole-trace index i, decoding (and
// caching) its chunk on demand — the random-access path report
// rendering uses.
func (r *Reader) Event(i int) (trace.Event, error) {
	if i < 0 || i >= r.total {
		return trace.Event{}, fmt.Errorf("tracev2: event index %d out of range [0,%d)", i, r.total)
	}
	c := i / r.chunkSize
	events, err := r.chunk(c)
	if err != nil {
		return trace.Event{}, err
	}
	return events[i-c*r.chunkSize], nil
}

// chunk returns chunk c's decoded events through the LRU cache.
func (r *Reader) chunk(c int) ([]trace.Event, error) {
	for i := range r.cache {
		if r.cache[i].idx == c {
			r.tick++
			r.cache[i].tick = r.tick
			r.col.CountChunkCacheHit()
			return r.cache[i].events, nil
		}
	}
	r.col.CountChunkCacheMiss()
	victim := 0
	for i := 1; i < len(r.cache); i++ {
		if r.cache[i].tick < r.cache[victim].tick {
			victim = i
		}
	}
	events, err := r.decodeChunk(c, r.cache[victim].events[:0])
	if err != nil {
		return nil, err
	}
	r.tick++
	r.cache[victim] = cacheEntry{idx: c, events: events, tick: r.tick}
	return events, nil
}

// decodeChunk decodes chunk c into dst (reusing its capacity) with full
// validation: the chunk's bytes must match the directory's crc32c
// (chunk data sits outside the footer checksum, so this is the only
// integrity check it gets), dictionary counts are bounded by the
// chunk's event count, every op byte must name a known op, and every
// column entry must index inside its dictionary — a lying chunk fails
// with ErrFormat, never a panic or an unbounded allocation. Every
// failure is wrapped in a *ChunkError carrying the chunk index and file
// offset, so callers far from the file (fleet workers analysing a
// shipped trace) can report which chunk was torn.
func (r *Reader) decodeChunk(c int, dst []trace.Event) ([]trace.Event, error) {
	d := r.dir[c]
	raw := r.data[d.off : d.off+d.length]
	if got := crc32.Checksum(raw, crcTable); got != d.crc {
		return nil, &ChunkError{Chunk: c, Offset: int64(d.off),
			Err: fmt.Errorf("%w: checksum mismatch (%#x, directory says %#x)", ErrFormat, got, d.crc)}
	}
	events, err := r.decodeChunkBody(c, raw, dst)
	if err != nil {
		return nil, &ChunkError{Chunk: c, Offset: int64(d.off), Err: err}
	}
	return events, nil
}

func (r *Reader) decodeChunkBody(c int, raw []byte, dst []trace.Event) ([]trace.Event, error) {
	d := r.dir[c]
	b := &byteReader{buf: raw}
	n, err := b.uvarint()
	if err != nil {
		return nil, err
	}
	if n != uint64(d.events) {
		return nil, fmt.Errorf("%w: chunk %d declares %d events, directory says %d",
			ErrFormat, c, n, d.events)
	}
	nEvents := int(n)

	readTidDict := func() ([]trace.TID, error) {
		cnt, err := b.uvarint()
		if err != nil {
			return nil, err
		}
		// Dictionaries are first-use: more entries than events is a lie.
		if cnt > uint64(nEvents) {
			return nil, fmt.Errorf("%w: chunk %d thread dict count %d > %d events",
				ErrFormat, c, cnt, nEvents)
		}
		out := make([]trace.TID, cnt)
		for i := range out {
			v, err := b.varint()
			if err != nil {
				return nil, err
			}
			out[i] = trace.TID(v)
		}
		return out, nil
	}
	readAddrDict := func(kind string) ([]trace.Addr, error) {
		cnt, err := b.uvarint()
		if err != nil {
			return nil, err
		}
		if cnt > uint64(nEvents) {
			return nil, fmt.Errorf("%w: chunk %d %s dict count %d > %d events",
				ErrFormat, c, kind, cnt, nEvents)
		}
		out := make([]trace.Addr, cnt)
		for i := range out {
			v, err := b.uvarint()
			if err != nil {
				return nil, err
			}
			out[i] = trace.Addr(v)
		}
		return out, nil
	}
	tids, err := readTidDict()
	if err != nil {
		return nil, err
	}
	vars, err := readAddrDict("variable")
	if err != nil {
		return nil, err
	}
	locks, err := readAddrDict("lock")
	if err != nil {
		return nil, err
	}
	locCnt, err := b.uvarint()
	if err != nil {
		return nil, err
	}
	if locCnt > uint64(nEvents) {
		return nil, fmt.Errorf("%w: chunk %d location dict count %d > %d events",
			ErrFormat, c, locCnt, nEvents)
	}
	locs := make([]trace.Loc, locCnt)
	for i := range locs {
		v, err := b.uvarint()
		if err != nil {
			return nil, err
		}
		locs[i] = trace.Loc(v)
	}

	if cap(dst) < nEvents {
		dst = make([]trace.Event, nEvents)
	} else {
		dst = dst[:nEvents]
	}
	ops, err := b.bytes(nEvents)
	if err != nil {
		return nil, err
	}
	for i, op := range ops {
		if op > byte(trace.OpBranch) {
			return nil, fmt.Errorf("%w: chunk %d unknown op %d", ErrFormat, c, op)
		}
		dst[i].Op = trace.Op(op)
	}
	for i := range dst {
		idx, err := b.uvarint()
		if err != nil {
			return nil, err
		}
		if idx >= uint64(len(tids)) {
			return nil, fmt.Errorf("%w: chunk %d thread dict index out of range", ErrFormat, c)
		}
		dst[i].Tid = tids[idx]
	}
	for i := range dst {
		v, err := b.uvarint()
		if err != nil {
			return nil, err
		}
		switch {
		case dst[i].Op.IsAccess():
			if v >= uint64(len(vars)) {
				return nil, fmt.Errorf("%w: chunk %d variable dict index out of range", ErrFormat, c)
			}
			dst[i].Addr = vars[v]
		case dst[i].Op == trace.OpAcquire || dst[i].Op == trace.OpRelease:
			if v >= uint64(len(locks)) {
				return nil, fmt.Errorf("%w: chunk %d lock dict index out of range", ErrFormat, c)
			}
			dst[i].Addr = locks[v]
		default:
			dst[i].Addr = trace.Addr(v)
		}
	}
	for i := range dst {
		v, err := b.varint()
		if err != nil {
			return nil, err
		}
		dst[i].Value = v
	}
	for i := range dst {
		v, err := b.uvarint()
		if err != nil {
			return nil, err
		}
		if v >= uint64(len(locs)) {
			return nil, fmt.Errorf("%w: chunk %d location dict index out of range", ErrFormat, c)
		}
		dst[i].Loc = locs[v]
	}
	if b.off != len(b.buf) {
		return nil, fmt.Errorf("%w: %d trailing chunk bytes", ErrFormat, len(b.buf)-b.off)
	}
	return dst, nil
}
