package tracev2

import (
	"bufio"
	"fmt"
	"io"
)

// Dump streams the same human-readable listing tracefile.Dump produces,
// one decoded chunk at a time — a multi-GB chunked trace dumps with one
// chunk of events live.
func Dump(w io.Writer, r *Reader) error {
	bw := bufio.NewWriter(w)
	cu := &chunkCursor{r: r, idx: -1}
	i := 0
	for c := range r.dir {
		ev, err := r.decodeChunk(c, cu.events[:0])
		if err != nil {
			return err
		}
		cu.idx, cu.events = c, ev
		for _, e := range ev {
			if _, err := fmt.Fprintf(bw, "%6d  %-30s %s\n", i, e, r.LocName(e.Loc)); err != nil {
				return err
			}
			i++
		}
	}
	return bw.Flush()
}
