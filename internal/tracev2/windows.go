package tracev2

import (
	"repro/trace"
)

// chunkCursor decodes chunks sequentially into one reusable buffer —
// the window iterator's read path, kept separate from the random-access
// cache so a linear scan never evicts the renderer's working set.
type chunkCursor struct {
	r      *Reader
	idx    int
	events []trace.Event
}

// fill copies events [lo, lo+len(dst)) of the trace into dst.
func (cu *chunkCursor) fill(dst []trace.Event, lo int) error {
	pos := lo
	for len(dst) > 0 {
		c := pos / cu.r.chunkSize
		if cu.idx != c {
			ev, err := cu.r.decodeChunk(c, cu.events[:0])
			if err != nil {
				return err
			}
			cu.idx, cu.events = c, ev
		}
		off := pos - c*cu.r.chunkSize
		n := copy(dst, cu.events[off:])
		dst = dst[n:]
		pos += n
	}
	return nil
}

// windowLinks returns the notify links falling entirely inside
// [lo, hi), rebased to window-local indices — the Slice rule.
func (r *Reader) windowLinks(lo, hi int) []trace.NotifyLink {
	var out []trace.NotifyLink
	for _, ln := range r.links {
		if ln.Notify >= lo && ln.Notify < hi &&
			ln.Release >= lo && ln.Release < hi &&
			ln.Acquire >= lo && ln.Acquire < hi {
			out = append(out, trace.NotifyLink{
				Notify:  ln.Notify - lo,
				Release: ln.Release - lo,
				Acquire: ln.Acquire - lo,
			})
		}
	}
	return out
}

// Windows invokes f for each analysis window in trace order,
// replicating race.WindowSlices semantics exactly — same window
// boundaries, same carried last-write installation into each window's
// initial-value map, same notify-link filtering — while holding only
// O(window + chunk) events live. Each window is a fresh *trace.Trace
// over its own event slice (the volatile and location-name maps are
// shared across windows by reference, like Slice); f owns the window
// for the duration of the call, and widx/offset give its index and
// whole-trace event offset.
func (r *Reader) Windows(size int, f func(w *trace.Trace, widx, offset int) error) error {
	cu := &chunkCursor{r: r, idx: -1}
	if size <= 0 || r.total <= size {
		w, err := r.buildWindow(cu, 0, r.total, nil)
		if err != nil {
			return err
		}
		return f(w, 0, 0)
	}
	carried := make(map[trace.Addr]int64)
	widx := 0
	for lo := 0; lo < r.total; lo += size {
		hi := lo + size
		if hi > r.total {
			hi = r.total
		}
		w, err := r.buildWindow(cu, lo, hi, carried)
		if err != nil {
			return err
		}
		if err := f(w, widx, lo); err != nil {
			return err
		}
		// The next window inherits this one's final write per address —
		// WindowSlices' carried map, updated after the window is cut.
		for _, e := range w.Events() {
			if e.Op == trace.OpWrite {
				carried[e.Addr] = e.Value
			}
		}
		widx++
	}
	return nil
}

// buildWindow materialises events [lo, hi) as a window trace whose
// initial-value map is the declared initials overlaid with the carried
// last-writes (carried wins, matching Slice-copy-then-SetInitial
// order).
func (r *Reader) buildWindow(cu *chunkCursor, lo, hi int, carried map[trace.Addr]int64) (*trace.Trace, error) {
	events := make([]trace.Event, hi-lo)
	if err := cu.fill(events, lo); err != nil {
		return nil, err
	}
	initial := make(map[trace.Addr]int64, len(r.initials)+len(carried))
	for a, v := range r.initials {
		initial[a] = v
	}
	for a, v := range carried {
		initial[a] = v
	}
	return trace.FromParts(events, r.windowLinks(lo, hi), r.volatiles, initial, r.names), nil
}

// ReadAll materialises the whole trace as a *trace.Trace — the bridge
// for whole-trace consumers (the baseline algorithms, witness
// validation) that cannot yet iterate windows. Costs O(trace) memory by
// definition; the detector's out-of-core path never calls it.
func (r *Reader) ReadAll() (*trace.Trace, error) {
	tr := trace.New(r.total)
	cu := &chunkCursor{r: r, idx: -1}
	for c := range r.dir {
		ev, err := r.decodeChunk(c, cu.events[:0])
		if err != nil {
			return nil, err
		}
		cu.events = ev
		for _, e := range ev {
			tr.Append(e)
		}
	}
	for _, ln := range r.links {
		tr.AddNotifyLink(ln.Notify, ln.Release, ln.Acquire)
	}
	for a := range r.volatiles {
		tr.SetVolatile(a)
	}
	for a, v := range r.initials {
		tr.SetInitial(a, v)
	}
	for l, name := range r.names {
		tr.NameLoc(l, name)
	}
	return tr, nil
}
