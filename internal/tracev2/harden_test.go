package tracev2_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/tracev2"
	"repro/trace"
)

// hostileBase returns a small valid chunked file to mutate: multiple
// chunks, metadata, names — every decoder path exercised.
func hostileBase(t testing.TB) []byte {
	tr := fixtures.Figure1()
	var buf bytes.Buffer
	if err := tracev2.WriteTrace(&buf, tr, 4); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	return buf.Bytes()
}

// refitTail recomputes the footer CRC after a footer mutation, so the
// mutated bytes reach the structural validators instead of being
// rejected at the checksum — a "lying directory" rather than a torn
// one.
func refitTail(t testing.TB, data []byte) []byte {
	if len(data) < 12 {
		t.Fatal("file too short for a tail")
	}
	footerLen := int(binary.LittleEndian.Uint32(data[len(data)-12:]))
	footerOff := len(data) - 12 - footerLen
	if footerOff < 0 {
		t.Fatal("tail declares an impossible footer")
	}
	crc := crc32.Checksum(data[footerOff:len(data)-12], crc32.MakeTable(crc32.Castagnoli))
	binary.LittleEndian.PutUint32(data[len(data)-8:], crc)
	return data
}

func TestTruncationEveryPrefix(t *testing.T) {
	data := hostileBase(t)
	for n := 0; n < len(data); n++ {
		if _, err := tracev2.NewReader(data[:n]); err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted", n, len(data))
		} else if !errors.Is(err, tracev2.ErrFormat) {
			t.Fatalf("prefix %d: err = %v, want ErrFormat", n, err)
		}
	}
	if _, err := tracev2.NewReader(data); err != nil {
		t.Fatalf("intact file rejected: %v", err)
	}
}

// TestFlipEveryByte flips each byte in turn (fixing the footer CRC when
// the flip lands in the footer, so directory lies are validated rather
// than checksummed away) and requires the reader to survive: decode
// errors are fine, panics and out-of-range access are not.
func TestFlipEveryByte(t *testing.T) {
	base := hostileBase(t)
	footerLen := int(binary.LittleEndian.Uint32(base[len(base)-12:]))
	footerOff := len(base) - 12 - footerLen
	for i := 0; i < len(base); i++ {
		data := bytes.Clone(base)
		data[i] ^= 0xFF
		if i >= footerOff && i < len(base)-12 {
			refitTail(t, data)
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("byte %d flipped: panic: %v", i, p)
				}
			}()
			r, err := tracev2.NewReader(data)
			if err != nil {
				return
			}
			_, _ = r.ReadAll()
			_ = r.Windows(3, func(_ *trace.Trace, _, _ int) error { return nil })
		}()
	}
}

func TestHostileHeaders(t *testing.T) {
	base := hostileBase(t)
	cases := map[string][]byte{
		"empty":      nil,
		"magic only": []byte("RVC2"),
		"bad magic":  append([]byte("JUNK"), base[4:]...),
		"bad version": func() []byte {
			d := bytes.Clone(base)
			d[4] = 0x7F
			return d
		}(),
		"bad tail magic": func() []byte {
			d := bytes.Clone(base)
			copy(d[len(d)-4:], "XXXX")
			return d
		}(),
		"footer length over file": func() []byte {
			d := bytes.Clone(base)
			binary.LittleEndian.PutUint32(d[len(d)-12:], uint32(len(d)))
			return d
		}(),
		"tail only": append([]byte("RVC2\x01"), base[len(base)-12:]...),
	}
	for name, data := range cases {
		if _, err := tracev2.NewReader(data); !errors.Is(err, tracev2.ErrFormat) {
			t.Errorf("%s: err = %v, want ErrFormat", name, err)
		}
	}
}

// FuzzChunkDecode fuzzes the whole reader stack. Seeds cover the
// hostile shapes the format must survive: an intact file, a truncated
// footer, a lying chunk directory (CRC refitted after the lie), and a
// corrupted in-chunk dictionary index (chunk bytes are outside the
// footer checksum, so this reaches the column decoders).
func FuzzChunkDecode(f *testing.F) {
	base := hostileBase(f)
	f.Add(base)
	f.Add(base[:len(base)-13]) // truncated footer + tail
	lie := bytes.Clone(base)
	footerLen := int(binary.LittleEndian.Uint32(lie[len(lie)-12:]))
	footerOff := len(lie) - 12 - footerLen
	lie[footerOff] ^= 0x55 // first footer byte: total-event count lies
	f.Add(refitTail(f, lie))
	dict := bytes.Clone(base)
	dict[6] ^= 0xFF // inside the first chunk: dictionary/op bytes corrupt
	f.Add(dict)
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := tracev2.NewReader(data)
		if err != nil {
			return
		}
		n := r.NumEvents()
		if n < 0 {
			t.Fatalf("NumEvents = %d", n)
		}
		for _, i := range []int{0, 1, n / 2, n - 1} {
			if i >= 0 && i < n {
				if _, err := r.Event(i); err != nil {
					break
				}
			}
		}
		if tr, err := r.ReadAll(); err == nil && tr.Len() != n {
			t.Fatalf("ReadAll len %d, want %d", tr.Len(), n)
		}
		_ = r.Windows(5, func(_ *trace.Trace, _, _ int) error { return nil })
	})
}
