//go:build linux

package tracev2

import (
	"os"
	"syscall"
)

// mapFile maps path read-only. The second return releases the mapping;
// the third is the mapped byte count (0 when the file was read into
// memory instead — the empty-file case, which mmap rejects).
func mapFile(path string) ([]byte, func() error, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, 0, err
	}
	size := st.Size()
	if size == 0 {
		return nil, func() error { return nil }, 0, nil
	}
	if size != int64(int(size)) {
		return readFileFallback(path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Filesystems without mmap support (some network mounts) fall
		// back to an in-memory read.
		return readFileFallback(path)
	}
	unmap := func() error { return syscall.Munmap(data) }
	return data, unmap, size, nil
}
