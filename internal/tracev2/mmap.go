package tracev2

import "os"

// readFileFallback loads the whole file into memory — the portable
// fallback when mmap is unavailable. Peak memory is then O(file), but
// the columnar encoding is still ~5× smaller than the decoded event
// slice, and all decode paths are unchanged.
func readFileFallback(path string) ([]byte, func() error, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, 0, err
	}
	return data, func() error { return nil }, 0, nil
}
