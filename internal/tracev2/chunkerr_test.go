package tracev2_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/tracev2"
	"repro/trace"
)

// TestChunkCorruptionTyped corrupts one byte inside a chunk's encoded
// bytes — a region the footer checksum does not cover — and asserts the
// failure is a *ChunkError naming the chunk index and file offset,
// still matching ErrFormat, while untouched chunks keep decoding.
func TestChunkCorruptionTyped(t *testing.T) {
	tr := fixtures.Figure1()
	var buf bytes.Buffer
	if err := tracev2.WriteTrace(&buf, tr, 4); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	data := buf.Bytes()

	// The header is "RVC2" plus one version byte, so chunk 0's encoding
	// always starts at offset 5 (see the format doc in format.go).
	const chunk0Off = 5
	data[chunk0Off+1] ^= 0xFF

	r, err := tracev2.NewReader(data)
	if err != nil {
		t.Fatalf("NewReader: %v (chunk corruption must surface lazily, at decode)", err)
	}
	_, err = r.Event(0)
	if err == nil {
		t.Fatal("Event(0) decoded a corrupted chunk")
	}
	var ce *tracev2.ChunkError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *ChunkError", err)
	}
	if ce.Chunk != 0 {
		t.Errorf("ChunkError.Chunk = %d, want 0", ce.Chunk)
	}
	if ce.Offset != chunk0Off {
		t.Errorf("ChunkError.Offset = %d, want %d", ce.Offset, chunk0Off)
	}
	if !errors.Is(err, tracev2.ErrFormat) {
		t.Errorf("errors.Is(err, ErrFormat) = false, want true")
	}

	// A later, untouched chunk still decodes: corruption is located, not
	// contagious.
	if tr.Len() <= 4 {
		t.Fatalf("fixture has %d events, need > 4 for a second chunk", tr.Len())
	}
	if _, err := r.Event(4); err != nil {
		t.Errorf("Event(4) in intact chunk 1: %v", err)
	}

	// The windowed iterator reports the same located failure.
	err = r.Windows(3, func(_ *trace.Trace, _, _ int) error { return nil })
	if !errors.As(err, &ce) || ce.Chunk != 0 {
		t.Errorf("Windows err = %v, want *ChunkError for chunk 0", err)
	}
}
