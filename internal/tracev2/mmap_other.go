//go:build !linux

package tracev2

// mapFile reads path into memory on platforms without the mmap path.
// The mapped byte count is 0: nothing is resident-on-demand.
func mapFile(path string) ([]byte, func() error, int64, error) {
	return readFileFallback(path)
}
