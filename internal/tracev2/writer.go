package tracev2

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/tracefile"
	"repro/trace"
)

// crcTable is the Castagnoli polynomial used for the footer checksum —
// the same choice the journal's frame CRCs use.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// chunkDir is one chunk directory entry: where the chunk's bytes live
// and what index ranges it covers.
type chunkDir struct {
	off    uint64
	length uint64
	events int
	crc    uint32 // crc32c of the chunk's encoded bytes

	minTid, maxTid   trace.TID
	minVar, maxVar   trace.Addr
	minLock, maxLock trace.Addr
}

// Writer streams events into a chunked file: events arrive one at a
// time, full chunks are encoded and flushed immediately, and Finish
// writes the metadata block, footer and tail. Peak writer memory is one
// chunk of events plus its encoding — independent of trace length.
type Writer struct {
	w         *bufio.Writer
	off       uint64 // bytes written so far (logical offset)
	chunkSize int
	buf       []trace.Event
	scratch   []byte
	dir       []chunkDir
	total     int
	err       error
}

// NewWriter writes the file header to w and returns a Writer with the
// given chunk capacity (DefaultChunkSize when size <= 0).
func NewWriter(w io.Writer, chunkSize int) (*Writer, error) {
	if chunkSize <= 0 {
		chunkSize = DefaultChunkSize
	}
	if chunkSize > maxChunkSize {
		return nil, fmt.Errorf("tracev2: chunk size %d exceeds cap %d", chunkSize, maxChunkSize)
	}
	bw := bufio.NewWriter(w)
	hdr := append([]byte(Magic), byte(Version)) // Version < 0x80: one uvarint byte
	if _, err := bw.Write(hdr); err != nil {
		return nil, err
	}
	return &Writer{
		w:         bw,
		off:       uint64(len(hdr)),
		chunkSize: chunkSize,
		buf:       make([]trace.Event, 0, chunkSize),
	}, nil
}

// WriteEvent appends one event, flushing a chunk when it fills.
func (w *Writer) WriteEvent(e trace.Event) error {
	if w.err != nil {
		return w.err
	}
	w.buf = append(w.buf, e)
	if len(w.buf) == w.chunkSize {
		w.flushChunk()
	}
	return w.err
}

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	if _, err := w.w.Write(p); err != nil {
		w.err = err
		return
	}
	w.off += uint64(len(p))
}

func (w *Writer) flushChunk() {
	if w.err != nil || len(w.buf) == 0 {
		return
	}
	var d chunkDir
	w.scratch, d = appendChunk(w.scratch[:0], w.buf)
	d.off = w.off
	d.length = uint64(len(w.scratch))
	d.events = len(w.buf)
	d.crc = crc32.Checksum(w.scratch, crcTable)
	w.write(w.scratch)
	if w.err == nil {
		w.dir = append(w.dir, d)
		w.total += len(w.buf)
		w.buf = w.buf[:0]
	}
}

// Finish flushes the final partial chunk and writes the metadata block,
// footer (with the precomputed stats and canonical content hash) and
// tail. The Writer must not be used afterwards.
func (w *Writer) Finish(m *tracefile.Meta, stats trace.Stats, contentHash [sha256.Size]byte) error {
	w.flushChunk()
	metaOff := w.off
	w.write(appendMeta(nil, m))
	metaLen := w.off - metaOff

	footer := binary.AppendUvarint(nil, uint64(w.total))
	footer = binary.AppendUvarint(footer, uint64(w.chunkSize))
	footer = binary.AppendUvarint(footer, uint64(len(w.dir)))
	for _, d := range w.dir {
		footer = binary.AppendUvarint(footer, d.off)
		footer = binary.AppendUvarint(footer, d.length)
		footer = binary.AppendUvarint(footer, uint64(d.events))
		footer = binary.AppendVarint(footer, int64(d.minTid))
		footer = binary.AppendVarint(footer, int64(d.maxTid))
		footer = binary.AppendUvarint(footer, uint64(d.minVar))
		footer = binary.AppendUvarint(footer, uint64(d.maxVar))
		footer = binary.AppendUvarint(footer, uint64(d.minLock))
		footer = binary.AppendUvarint(footer, uint64(d.maxLock))
		footer = binary.AppendUvarint(footer, uint64(d.crc))
	}
	footer = binary.AppendUvarint(footer, metaOff)
	footer = binary.AppendUvarint(footer, metaLen)
	for _, v := range []int{
		stats.Threads, stats.Events, stats.Accesses, stats.Syncs,
		stats.Branches, stats.Locks, stats.Shared,
	} {
		footer = binary.AppendUvarint(footer, uint64(v))
	}
	footer = append(footer, contentHash[:]...)
	w.write(footer)

	var tail [tailLen]byte
	binary.LittleEndian.PutUint32(tail[0:4], uint32(len(footer)))
	binary.LittleEndian.PutUint32(tail[4:8], crc32.Checksum(footer, crcTable))
	copy(tail[8:], Magic)
	w.write(tail[:])
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// appendChunk encodes events as one columnar chunk and returns the
// extended buffer plus the chunk's min/max directory ranges.
func appendChunk(dst []byte, events []trace.Event) ([]byte, chunkDir) {
	tidIdx := make(map[trace.TID]int)
	varIdx := make(map[trace.Addr]int)
	lockIdx := make(map[trace.Addr]int)
	locIdx := make(map[trace.Loc]int)
	var tids []trace.TID
	var vars, locks []trace.Addr
	var locs []trace.Loc
	for _, e := range events {
		if _, ok := tidIdx[e.Tid]; !ok {
			tidIdx[e.Tid] = len(tids)
			tids = append(tids, e.Tid)
		}
		switch {
		case e.Op.IsAccess():
			if _, ok := varIdx[e.Addr]; !ok {
				varIdx[e.Addr] = len(vars)
				vars = append(vars, e.Addr)
			}
		case e.Op == trace.OpAcquire || e.Op == trace.OpRelease:
			if _, ok := lockIdx[e.Addr]; !ok {
				lockIdx[e.Addr] = len(locks)
				locks = append(locks, e.Addr)
			}
		}
		if _, ok := locIdx[e.Loc]; !ok {
			locIdx[e.Loc] = len(locs)
			locs = append(locs, e.Loc)
		}
	}
	var d chunkDir
	for i, t := range tids {
		if i == 0 || t < d.minTid {
			d.minTid = t
		}
		if i == 0 || t > d.maxTid {
			d.maxTid = t
		}
	}
	for i, a := range vars {
		if i == 0 || a < d.minVar {
			d.minVar = a
		}
		if i == 0 || a > d.maxVar {
			d.maxVar = a
		}
	}
	for i, a := range locks {
		if i == 0 || a < d.minLock {
			d.minLock = a
		}
		if i == 0 || a > d.maxLock {
			d.maxLock = a
		}
	}

	dst = binary.AppendUvarint(dst, uint64(len(events)))
	dst = binary.AppendUvarint(dst, uint64(len(tids)))
	for _, t := range tids {
		dst = binary.AppendVarint(dst, int64(t))
	}
	dst = binary.AppendUvarint(dst, uint64(len(vars)))
	for _, a := range vars {
		dst = binary.AppendUvarint(dst, uint64(a))
	}
	dst = binary.AppendUvarint(dst, uint64(len(locks)))
	for _, a := range locks {
		dst = binary.AppendUvarint(dst, uint64(a))
	}
	dst = binary.AppendUvarint(dst, uint64(len(locs)))
	for _, l := range locs {
		dst = binary.AppendUvarint(dst, uint64(l))
	}
	// Columns: ops first (raw bytes) — decoding them first tells the
	// reader how to interpret each addr-column entry.
	for _, e := range events {
		dst = append(dst, byte(e.Op))
	}
	for _, e := range events {
		dst = binary.AppendUvarint(dst, uint64(tidIdx[e.Tid]))
	}
	for _, e := range events {
		switch {
		case e.Op.IsAccess():
			dst = binary.AppendUvarint(dst, uint64(varIdx[e.Addr]))
		case e.Op == trace.OpAcquire || e.Op == trace.OpRelease:
			dst = binary.AppendUvarint(dst, uint64(lockIdx[e.Addr]))
		default:
			dst = binary.AppendUvarint(dst, uint64(e.Addr))
		}
	}
	for _, e := range events {
		dst = binary.AppendVarint(dst, e.Value)
	}
	for _, e := range events {
		dst = binary.AppendUvarint(dst, uint64(locIdx[e.Loc]))
	}
	return dst, d
}

// appendMeta encodes the metadata block: the legacy per-section element
// encodings, in wire order.
func appendMeta(dst []byte, m *tracefile.Meta) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(m.Links)))
	for _, ln := range m.Links {
		dst = binary.AppendUvarint(dst, uint64(ln.Notify))
		dst = binary.AppendUvarint(dst, uint64(ln.Release))
		dst = binary.AppendUvarint(dst, uint64(ln.Acquire))
	}
	dst = binary.AppendUvarint(dst, uint64(len(m.Volatiles)))
	for _, a := range m.Volatiles {
		dst = binary.AppendUvarint(dst, uint64(a))
	}
	dst = binary.AppendUvarint(dst, uint64(len(m.Initials)))
	for _, kv := range m.Initials {
		dst = binary.AppendUvarint(dst, uint64(kv.Addr))
		dst = binary.AppendVarint(dst, kv.Value)
	}
	dst = binary.AppendUvarint(dst, uint64(len(m.Names)))
	for _, nm := range m.Names {
		dst = binary.AppendUvarint(dst, uint64(nm.Loc))
		dst = binary.AppendUvarint(dst, uint64(len(nm.Name)))
		dst = append(dst, nm.Name...)
	}
	return dst
}

// Convert streams a legacy trace file into the chunked format, holding
// one chunk of events plus alphabet-sized state (thread/lock/address
// sets for the stats) live — never the whole trace. The content hash is
// taken over src's bytes as read, so src must be a canonical legacy
// encoding (the only kind tracefile.Encode produces); the hash then
// equals journal.TraceFingerprint of the decoded trace. Returns the
// trace's stats, identical to what ComputeStats would report.
func Convert(dst io.Writer, src io.Reader, chunkSize int) (trace.Stats, error) {
	h := sha256.New()
	sc, err := tracefile.NewScanner(io.TeeReader(src, h))
	if err != nil {
		return trace.Stats{}, err
	}
	w, err := NewWriter(dst, chunkSize)
	if err != nil {
		return trace.Stats{}, err
	}
	threads := make(map[trace.TID]bool)
	lockSet := make(map[trace.Addr]bool)
	accessed := make(map[trace.Addr]bool)
	var st trace.Stats
	for {
		e, ok := sc.Next()
		if !ok {
			break
		}
		threads[e.Tid] = true
		st.Events++
		switch {
		case e.Op.IsAccess():
			st.Accesses++
			accessed[e.Addr] = true
		case e.Op == trace.OpBranch:
			st.Branches++
		default:
			st.Syncs++
			if e.Op == trace.OpAcquire || e.Op == trace.OpRelease {
				lockSet[e.Addr] = true
			}
		}
		if err := w.WriteEvent(e); err != nil {
			return trace.Stats{}, err
		}
	}
	if err := sc.Err(); err != nil {
		return trace.Stats{}, err
	}
	m, err := sc.Meta()
	if err != nil {
		return trace.Stats{}, err
	}
	// Volatile declarations trail the events on the legacy wire, so the
	// shared count is settled here: distinct accessed, non-volatile
	// addresses — exactly ComputeStats' definition.
	vol := make(map[trace.Addr]bool, len(m.Volatiles))
	for _, a := range m.Volatiles {
		vol[a] = true
	}
	for a := range accessed {
		if !vol[a] {
			st.Shared++
		}
	}
	st.Threads = len(threads)
	st.Locks = len(lockSet)
	var hash [sha256.Size]byte
	h.Sum(hash[:0])
	return st, w.Finish(m, st, hash)
}

// WriteTrace writes an in-memory trace in the chunked format. The
// content hash is computed by streaming the canonical legacy encoding
// through SHA-256 (never materialising it), matching
// journal.TraceFingerprint.
func WriteTrace(dst io.Writer, tr *trace.Trace, chunkSize int) error {
	h := sha256.New()
	if err := tracefile.Encode(h, tr); err != nil {
		return err
	}
	var hash [sha256.Size]byte
	h.Sum(hash[:0])
	w, err := NewWriter(dst, chunkSize)
	if err != nil {
		return err
	}
	for _, e := range tr.Events() {
		if err := w.WriteEvent(e); err != nil {
			return err
		}
	}
	vols, inits, names := tracefile.CollectMeta(tr)
	m := &tracefile.Meta{
		Links:     tr.NotifyLinks(),
		Volatiles: vols,
		Initials:  inits,
		Names:     names,
	}
	return w.Finish(m, tr.ComputeStats(), hash)
}
