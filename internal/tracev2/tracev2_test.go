package tracev2_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/journal"
	"repro/internal/race"
	"repro/internal/telemetry"
	"repro/internal/tracefile"
	"repro/internal/tracev2"
	"repro/internal/workloads"
	"repro/trace"
)

// chunkedReader writes tr in the chunked format and opens a reader over
// the bytes.
func chunkedReader(t *testing.T, tr *trace.Trace, chunkSize int) *tracev2.Reader {
	t.Helper()
	var buf bytes.Buffer
	if err := tracev2.WriteTrace(&buf, tr, chunkSize); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	r, err := tracev2.NewReader(buf.Bytes())
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	return r
}

// encodeLegacy renders a trace in the canonical legacy encoding — the
// byte-identity yardstick for windows and whole traces.
func encodeLegacy(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tracefile.Encode(&buf, tr); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return buf.Bytes()
}

func testTraces(t *testing.T) map[string]*trace.Trace {
	t.Helper()
	spec := workloads.Rows()[4] // bufwriter: locks, volatiles, wait/notify
	wl, _ := workloads.Build(spec)
	empty := trace.NewBuilder().Trace()
	meta := trace.NewBuilder()
	meta.Volatile(7)
	meta.Initial(5, 42)
	meta.AtNamed(3, "Server.java:120").Write(1, 5, 42)
	meta.At(4).ReadV(2, 7, 0)
	meta.Acquire(1, 9)
	meta.Wait(1, 9, func(b *trace.Builder) int {
		n := b.Mark()
		b.Write(2, 5, 1)
		return n
	})
	meta.Release(1, 9)
	return map[string]*trace.Trace{
		"figure1":  fixtures.Figure1(),
		"workload": wl,
		"empty":    empty,
		"metadata": meta.Trace(),
	}
}

func TestRoundTrip(t *testing.T) {
	for name, tr := range testTraces(t) {
		for _, chunkSize := range []int{1, 7, 64, tracev2.DefaultChunkSize} {
			r := chunkedReader(t, tr, chunkSize)
			if r.NumEvents() != tr.Len() {
				t.Fatalf("%s/%d: NumEvents = %d, want %d", name, chunkSize, r.NumEvents(), tr.Len())
			}
			got, err := r.ReadAll()
			if err != nil {
				t.Fatalf("%s/%d: ReadAll: %v", name, chunkSize, err)
			}
			// The materialised trace must re-encode to the exact canonical
			// legacy bytes: events, links, volatiles, initials and names
			// all survived the columnar round trip.
			if want, have := encodeLegacy(t, tr), encodeLegacy(t, got); !bytes.Equal(want, have) {
				t.Errorf("%s/%d: round-tripped trace re-encodes differently", name, chunkSize)
			}
			if r.Stats() != tr.ComputeStats() {
				t.Errorf("%s/%d: Stats = %+v, want %+v", name, chunkSize, r.Stats(), tr.ComputeStats())
			}
			fp, err := journal.TraceFingerprint(tr)
			if err != nil {
				t.Fatalf("TraceFingerprint: %v", err)
			}
			if r.ContentHash() != fp {
				t.Errorf("%s/%d: ContentHash does not match journal.TraceFingerprint", name, chunkSize)
			}
		}
	}
}

func TestRandomAccess(t *testing.T) {
	tr := testTraces(t)["workload"]
	r := chunkedReader(t, tr, 64)
	col := telemetry.NewCollector()
	r.AttachTelemetry(col)
	// Strided access across chunks, then a dense re-read that must hit
	// the cache.
	for i := 0; i < tr.Len(); i += 97 {
		e, err := r.Event(i)
		if err != nil {
			t.Fatalf("Event(%d): %v", i, err)
		}
		if e != tr.Event(i) {
			t.Fatalf("Event(%d) = %v, want %v", i, e, tr.Event(i))
		}
	}
	misses := col.ChunkCacheMisses()
	if misses == 0 {
		t.Fatal("expected chunk cache misses from strided access")
	}
	for i := 0; i < 64 && i < tr.Len(); i++ {
		if _, err := r.Event(i); err != nil {
			t.Fatalf("Event(%d): %v", i, err)
		}
	}
	if col.ChunkCacheHits() == 0 {
		t.Error("dense re-read produced no cache hits")
	}
}

// TestWindowsMatchWindowSlices is the core equivalence: the chunked
// reader's streamed windows must be byte-identical (per-window legacy
// encoding, carried initial state included) to race.WindowSlices over
// the materialised trace — the invariant that makes reader-path
// detection results interchangeable with batch results.
func TestWindowsMatchWindowSlices(t *testing.T) {
	for name, tr := range testTraces(t) {
		for _, chunkSize := range []int{3, 64} {
			for _, winSize := range []int{0, 1, 5, 64, 1000, tr.Len(), tr.Len() + 1} {
				r := chunkedReader(t, tr, chunkSize)
				want := race.WindowSlices(tr, winSize)
				var got []struct {
					enc    []byte
					offset int
				}
				err := r.Windows(winSize, func(w *trace.Trace, widx, offset int) error {
					if widx != len(got) {
						t.Fatalf("window index %d, want %d", widx, len(got))
					}
					got = append(got, struct {
						enc    []byte
						offset int
					}{encodeLegacy(t, w), offset})
					return nil
				})
				if err != nil {
					t.Fatalf("%s cs=%d ws=%d: Windows: %v", name, chunkSize, winSize, err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s cs=%d ws=%d: %d windows, want %d", name, chunkSize, winSize, len(got), len(want))
				}
				for i, w := range want {
					if got[i].offset != w.Offset {
						t.Errorf("%s cs=%d ws=%d window %d: offset %d, want %d", name, chunkSize, winSize, i, got[i].offset, w.Offset)
					}
					if !bytes.Equal(got[i].enc, encodeLegacy(t, w.Trace)) {
						t.Errorf("%s cs=%d ws=%d window %d: bytes differ from WindowSlices", name, chunkSize, winSize, i)
					}
				}
			}
		}
	}
}

// TestMemReaderMatchesReader: the in-memory adapter and the chunked
// file reader must stream identical windows — they are interchangeable
// behind rvpredict's TraceReader.
func TestMemReaderMatchesReader(t *testing.T) {
	tr := testTraces(t)["workload"]
	mem, err := tracev2.FromTrace(tr)
	if err != nil {
		t.Fatalf("FromTrace: %v", err)
	}
	r := chunkedReader(t, tr, 64)
	if mem.ContentHash() != r.ContentHash() {
		t.Fatal("ContentHash differs between MemReader and Reader")
	}
	if mem.Stats() != r.Stats() {
		t.Fatal("Stats differ between MemReader and Reader")
	}
	for _, winSize := range []int{0, 100} {
		var a, b [][]byte
		if err := mem.Windows(winSize, func(w *trace.Trace, _, _ int) error {
			a = append(a, encodeLegacy(t, w))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := r.Windows(winSize, func(w *trace.Trace, _, _ int) error {
			b = append(b, encodeLegacy(t, w))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("ws=%d: %d vs %d windows", winSize, len(a), len(b))
		}
		for i := range a {
			if !bytes.Equal(a[i], b[i]) {
				t.Errorf("ws=%d window %d differs", winSize, i)
			}
		}
	}
}

// TestConvertMatchesWriteTrace: streaming a legacy file through Convert
// must produce byte-identical output to WriteTrace over the decoded
// trace — one chunked encoding, whichever path produced it.
func TestConvertMatchesWriteTrace(t *testing.T) {
	for name, tr := range testTraces(t) {
		legacy := encodeLegacy(t, tr)
		var converted bytes.Buffer
		stats, err := tracev2.Convert(&converted, bytes.NewReader(legacy), 64)
		if err != nil {
			t.Fatalf("%s: Convert: %v", name, err)
		}
		var direct bytes.Buffer
		if err := tracev2.WriteTrace(&direct, tr, 64); err != nil {
			t.Fatalf("%s: WriteTrace: %v", name, err)
		}
		if !bytes.Equal(converted.Bytes(), direct.Bytes()) {
			t.Errorf("%s: Convert and WriteTrace disagree", name)
		}
		if stats != tr.ComputeStats() {
			t.Errorf("%s: Convert stats = %+v, want %+v", name, stats, tr.ComputeStats())
		}
	}
}

func TestOpenMmap(t *testing.T) {
	tr := testTraces(t)["workload"]
	path := filepath.Join(t.TempDir(), "t.rvc2")
	var buf bytes.Buffer
	if err := tracev2.WriteTrace(&buf, tr, 64); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := tracev2.Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()
	got, err := r.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(encodeLegacy(t, got), encodeLegacy(t, tr)) {
		t.Error("mmapped read differs from original")
	}
	if err := r.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestDumpMatchesTracefileDump(t *testing.T) {
	tr := testTraces(t)["metadata"]
	r := chunkedReader(t, tr, 2)
	var want, got bytes.Buffer
	if err := tracefile.Dump(&want, tr); err != nil {
		t.Fatal(err)
	}
	if err := tracev2.Dump(&got, r); err != nil {
		t.Fatal(err)
	}
	if want.String() != got.String() {
		t.Errorf("dump differs:\nlegacy:\n%s\nchunked:\n%s", want.String(), got.String())
	}
}
