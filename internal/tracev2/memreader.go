package tracev2

import (
	"crypto/sha256"
	"fmt"

	"repro/internal/tracefile"
	"repro/trace"
)

// MemReader adapts an already-materialised *trace.Trace to the Reader
// access surface (NumEvents/Stats/ContentHash/LocName/Event/Windows/
// ReadAll), so the sharded analysis driver runs identically whether the
// trace came from a chunked file or a legacy decode. Windows replicates
// race.WindowSlices over Slice, and the content hash streams the
// canonical legacy encoding through SHA-256 — the same value a chunked
// file's footer carries for the same trace.
type MemReader struct {
	tr    *trace.Trace
	stats trace.Stats
	hash  [sha256.Size]byte
}

// FromTrace wraps tr. The trace must not be mutated afterwards (the
// hash and stats are computed here).
func FromTrace(tr *trace.Trace) (*MemReader, error) {
	h := sha256.New()
	if err := tracefile.Encode(h, tr); err != nil {
		return nil, err
	}
	m := &MemReader{tr: tr, stats: tr.ComputeStats()}
	h.Sum(m.hash[:0])
	return m, nil
}

// NumEvents returns the trace's event count.
func (m *MemReader) NumEvents() int { return m.tr.Len() }

// Stats returns the trace's summary metrics.
func (m *MemReader) Stats() trace.Stats { return m.stats }

// ContentHash returns the canonical-encoding SHA-256, matching
// journal.TraceFingerprint.
func (m *MemReader) ContentHash() [sha256.Size]byte { return m.hash }

// LocName renders a program location.
func (m *MemReader) LocName(l trace.Loc) string { return m.tr.LocName(l) }

// Event returns the event at whole-trace index i.
func (m *MemReader) Event(i int) (trace.Event, error) {
	if i < 0 || i >= m.tr.Len() {
		return trace.Event{}, fmt.Errorf("tracev2: event index %d out of range [0,%d)", i, m.tr.Len())
	}
	return m.tr.Event(i), nil
}

// Windows invokes f per analysis window with race.WindowSlices
// semantics: same boundaries, same carried last-write installation,
// built over Slice.
func (m *MemReader) Windows(size int, f func(w *trace.Trace, widx, offset int) error) error {
	tr := m.tr
	if size <= 0 || tr.Len() <= size {
		return f(tr, 0, 0)
	}
	carried := make(map[trace.Addr]int64)
	widx := 0
	for lo := 0; lo < tr.Len(); lo += size {
		hi := lo + size
		if hi > tr.Len() {
			hi = tr.Len()
		}
		w := tr.Slice(lo, hi)
		for a, v := range carried {
			w.SetInitial(a, v)
		}
		if err := f(w, widx, lo); err != nil {
			return err
		}
		for i := lo; i < hi; i++ {
			if e := tr.Event(i); e.Op == trace.OpWrite {
				carried[e.Addr] = e.Value
			}
		}
		widx++
	}
	return nil
}

// ReadAll returns the wrapped trace.
func (m *MemReader) ReadAll() (*trace.Trace, error) { return m.tr, nil }
