package journal

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/race"
	"repro/internal/telemetry"
	"repro/trace"
)

func testFingerprint() Fingerprint {
	return Fingerprint{
		Trace:   sha256.Sum256([]byte("trace")),
		Options: sha256.Sum256([]byte("options")),
	}
}

// testOutcomes is a representative outcome mix: races with and without
// witnesses, empty windows, counters, and an isolated failure.
func testOutcomes() []race.WindowOutcome {
	return []race.WindowOutcome{
		{
			Window: 0, Offset: 0, Events: 10,
			Candidates: 4, Solved: 3, COPsChecked: 3, SolverAborts: 1, PairsRetried: 2,
			ElapsedNS: 12345,
			Races: []race.Race{
				{
					COP: race.COP{A: 2, B: 7},
					Sig: race.Signature{First: 11, Second: 13},
				},
				{
					COP:     race.COP{A: 3, B: 9},
					Sig:     race.Signature{First: 17, Second: 17},
					Witness: []int{0, 1, 3, 9},
				},
			},
		},
		{Window: 1, Offset: 10, Events: 10, Candidates: 0, ElapsedNS: 99},
		{
			Window: 2, Offset: 20, Events: 5,
			Races: []race.Race{{
				COP:     race.COP{A: 21, B: 24},
				Sig:     race.Signature{First: 1, Second: 2},
				Witness: []int{},
			}},
			Failures: []race.WindowFailure{{
				Window: 2, Offset: 20, Events: 5,
				PanicValue: "boom", Stack: "goroutine 1 [running]",
			}},
		},
	}
}

func writeJournal(t *testing.T, path string, fp Fingerprint, outs []race.WindowOutcome, opt Options) {
	t.Helper()
	w, err := Create(path, fp, opt)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for _, out := range outs {
		if err := w.Append(out); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.rvpj")
	fp := testFingerprint()
	outs := testOutcomes()
	writeJournal(t, path, fp, outs, Options{})

	info, err := Recover(path, fp)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if info.TornTail {
		t.Error("clean journal reported a torn tail")
	}
	if !reflect.DeepEqual(info.Outcomes, outs) {
		t.Errorf("outcomes did not round-trip:\n got %#v\nwant %#v", info.Outcomes, outs)
	}
	st, _ := os.Stat(path)
	if info.Bytes != st.Size() {
		t.Errorf("intact prefix = %d bytes, file is %d", info.Bytes, st.Size())
	}
	// Witness nil-vs-empty must survive the round trip: it distinguishes
	// "no witness requested" from "empty witness prefix".
	if info.Outcomes[0].Races[0].Witness != nil {
		t.Error("nil witness decoded as non-nil")
	}
	if info.Outcomes[2].Races[0].Witness == nil {
		t.Error("empty witness decoded as nil")
	}
}

func TestGroupCommitBatchesFsync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.rvpj")
	fp := testFingerprint()
	col := telemetry.NewCollector()
	// An hour-long interval means only Create and Close sync; appends
	// stay buffered in the OS. Everything must still be intact after
	// Close.
	writeJournal(t, path, fp, testOutcomes(), Options{GroupCommit: time.Hour, Telemetry: col})

	info, err := Recover(path, fp)
	if err != nil || len(info.Outcomes) != 3 {
		t.Fatalf("Recover after group-commit close: %v (%d outcomes)", err, len(info.Outcomes))
	}
	j := col.Snapshot().Journal
	if j.RecordsWritten != 3 {
		t.Errorf("records_written = %d, want 3", j.RecordsWritten)
	}
	if j.Bytes <= 0 {
		t.Errorf("bytes = %d, want > 0", j.Bytes)
	}
	if j.FsyncNS <= 0 {
		t.Errorf("fsync_ns = %d, want > 0", j.FsyncNS)
	}
}

func TestFingerprintMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.rvpj")
	fp := testFingerprint()
	writeJournal(t, path, fp, testOutcomes(), Options{})

	other := fp
	other.Trace = sha256.Sum256([]byte("another trace"))
	if _, err := Recover(path, other); !errors.Is(err, ErrFingerprint) {
		t.Errorf("trace mismatch: got %v, want ErrFingerprint", err)
	}
	other = fp
	other.Options = sha256.Sum256([]byte("another option set"))
	if _, err := Recover(path, other); !errors.Is(err, ErrFingerprint) {
		t.Errorf("options mismatch: got %v, want ErrFingerprint", err)
	}
}

// TestCorruptionTable drives the decoder over bit-flipped and truncated
// journals: header damage refuses recovery outright, record damage is a
// torn tail truncated back to the last intact record.
func TestCorruptionTable(t *testing.T) {
	dir := t.TempDir()
	fp := testFingerprint()
	outs := testOutcomes()
	clean := filepath.Join(dir, "clean.rvpj")
	writeJournal(t, clean, fp, outs, Options{})
	data, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	// Layout: magic(4) + version(1) + header frame(1 len + 64 payload + 4
	// crc) = 74 bytes, then the three records. Find record boundaries by
	// re-encoding.
	headerLen := 4 + 1 + 1 + 2*sha256.Size + 4
	recLen := func(out race.WindowOutcome) int {
		var e encBuf
		e.frame(encodeOutcome(out))
		return len(e.b)
	}
	rec0 := recLen(outs[0])
	rec1 := recLen(outs[1])
	if headerLen+rec0+rec1+recLen(outs[2]) != len(data) {
		t.Fatalf("layout arithmetic is off: %d+%d+%d+%d != %d",
			headerLen, rec0, rec1, recLen(outs[2]), len(data))
	}

	cases := []struct {
		name      string
		mutate    func([]byte) []byte
		wantErr   error // nil means recovery succeeds
		wantTorn  bool
		wantCount int
	}{
		{
			name:    "magic flipped",
			mutate:  func(b []byte) []byte { return faultinject.Corrupt(b, 0, 0x01) },
			wantErr: ErrFormat,
		},
		{
			name:    "version flipped",
			mutate:  func(b []byte) []byte { return faultinject.Corrupt(b, 4, 0x01) },
			wantErr: ErrFormat,
		},
		{
			name:    "header payload flipped",
			mutate:  func(b []byte) []byte { return faultinject.Corrupt(b, 10, 0x40) },
			wantErr: ErrFormat,
		},
		{
			name:    "header truncated",
			mutate:  func(b []byte) []byte { return b[:headerLen-2] },
			wantErr: ErrFormat,
		},
		{
			name:      "first record payload flipped",
			mutate:    func(b []byte) []byte { return faultinject.Corrupt(b, headerLen+3, 0x10) },
			wantTorn:  true,
			wantCount: 0,
		},
		{
			name:      "middle record length prefix flipped",
			mutate:    func(b []byte) []byte { return faultinject.Corrupt(b, headerLen+rec0, 0x20) },
			wantTorn:  true,
			wantCount: 1,
		},
		{
			name:      "last record crc flipped",
			mutate:    func(b []byte) []byte { return faultinject.Corrupt(b, len(b)-1, 0x80) },
			wantTorn:  true,
			wantCount: 2,
		},
		{
			name:      "tail truncated mid-record",
			mutate:    func(b []byte) []byte { return b[:len(b)-3] },
			wantTorn:  true,
			wantCount: 2,
		},
		{
			name:      "tail truncated at record boundary",
			mutate:    func(b []byte) []byte { return b[:headerLen+rec0] },
			wantTorn:  false,
			wantCount: 1,
		},
		{
			name:      "trailing garbage",
			mutate:    func(b []byte) []byte { return append(append([]byte{}, b...), 0xDE, 0xAD) },
			wantTorn:  true,
			wantCount: 3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, "case.rvpj")
			if err := os.WriteFile(path, tc.mutate(append([]byte{}, data...)), 0o644); err != nil {
				t.Fatal(err)
			}
			info, err := Recover(path, fp)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("Recover: got %v, want %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			if info.TornTail != tc.wantTorn {
				t.Errorf("TornTail = %v, want %v", info.TornTail, tc.wantTorn)
			}
			if len(info.Outcomes) != tc.wantCount {
				t.Errorf("kept %d outcomes, want %d", len(info.Outcomes), tc.wantCount)
			}
			if tc.wantCount > 0 && !reflect.DeepEqual(info.Outcomes, outs[:tc.wantCount]) {
				t.Errorf("kept outcomes differ from the intact prefix")
			}
		})
	}
}

// TestResumeTruncatesTornTailAndAppends proves the recovery contract end
// to end: tear the tail, Resume truncates it, new appends land cleanly
// behind the intact prefix.
func TestResumeTruncatesTornTailAndAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.rvpj")
	fp := testFingerprint()
	outs := testOutcomes()
	writeJournal(t, path, fp, outs, Options{})

	// Tear the last record.
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	w, info, err := Resume(path, fp, Options{})
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if !info.TornTail || len(info.Outcomes) != 2 {
		t.Fatalf("Resume: torn=%v outcomes=%d, want torn with 2", info.TornTail, len(info.Outcomes))
	}
	st, _ := os.Stat(path)
	if st.Size() != info.Bytes {
		t.Errorf("torn tail not truncated: size %d, intact prefix %d", st.Size(), info.Bytes)
	}
	// Re-append the lost window, plus one more.
	extra := race.WindowOutcome{Window: 3, Offset: 25, Events: 7}
	if err := w.Append(outs[2]); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(extra); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	final, err := Recover(path, fp)
	if err != nil || final.TornTail {
		t.Fatalf("Recover after resume: %v (torn=%v)", err, final.TornTail)
	}
	want := append(append([]race.WindowOutcome{}, outs[:2]...), outs[2], extra)
	if !reflect.DeepEqual(final.Outcomes, want) {
		t.Errorf("resumed journal content wrong:\n got %#v\nwant %#v", final.Outcomes, want)
	}
}

func TestResumeCleanJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.rvpj")
	fp := testFingerprint()
	outs := testOutcomes()
	writeJournal(t, path, fp, outs, Options{})

	w, info, err := Resume(path, fp, Options{})
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	defer w.Close()
	if info.TornTail || len(info.Outcomes) != len(outs) {
		t.Errorf("clean resume: torn=%v outcomes=%d", info.TornTail, len(info.Outcomes))
	}
}

func TestAppendAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.rvpj")
	w, err := Create(path, testFingerprint(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(race.WindowOutcome{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Append after Close: got %v, want ErrClosed", err)
	}
	if err := w.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.json")
	if err := WriteFileAtomic(path, []byte("first"), nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("second"), nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "second" {
		t.Fatalf("read back %q, %v", data, err)
	}
	// No temp files may linger after successful writes.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want just the report", len(entries))
	}
}

func TestTraceFingerprintDistinguishesTraces(t *testing.T) {
	tr1 := trace.NewBuilder().Begin(1).Write(1, 100, 1).End(1).Trace()
	tr2 := trace.NewBuilder().Begin(1).Write(1, 100, 2).End(1).Trace()

	f1, err := TraceFingerprint(tr1)
	if err != nil {
		t.Fatal(err)
	}
	f1again, _ := TraceFingerprint(tr1)
	f2, _ := TraceFingerprint(tr2)
	if f1 != f1again {
		t.Error("fingerprint of the same trace is not deterministic")
	}
	if f1 == f2 {
		t.Error("different traces share a fingerprint")
	}
	if bytes.Equal(f1[:], make([]byte, sha256.Size)) {
		t.Error("fingerprint is zero")
	}
}
