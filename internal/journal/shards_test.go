package journal

import (
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/race"
)

// TestRecoverShardsConflictingDuplicates covers overlapping shard
// journals whose duplicate windows *disagree* — the fleet's speculative
// re-execution shape, where two workers analysed the same window and
// one result reached a journal with (say) different counter values.
// The rule under test: the earliest-listed journal wins, the order is
// deterministic, and every losing duplicate is reported in the
// conflicts count (which MergeShards forwards to the shard_conflicts
// telemetry counter).
func TestRecoverShardsConflictingDuplicates(t *testing.T) {
	dir := t.TempDir()
	fp := testFingerprint()

	// Window 1 appears in all three journals with three disagreeing
	// outcomes; window 2 appears twice, agreeing. Windows 0 and 3 are
	// unique.
	w1a := race.WindowOutcome{Window: 1, Offset: 10, Events: 10, Candidates: 3, Solved: 2, ElapsedNS: 100,
		Races: []race.Race{{COP: race.COP{A: 11, B: 14}, Sig: race.Signature{First: 5, Second: 7}}}}
	w1b := race.WindowOutcome{Window: 1, Offset: 10, Events: 10, Candidates: 3, Solved: 3, ElapsedNS: 999}
	w1c := race.WindowOutcome{Window: 1, Offset: 10, Events: 10, Candidates: 1, ElapsedNS: 7}
	w2 := race.WindowOutcome{Window: 2, Offset: 20, Events: 10, Candidates: 0, ElapsedNS: 55}

	pa := filepath.Join(dir, "a.rvpj")
	pb := filepath.Join(dir, "b.rvpj")
	pc := filepath.Join(dir, "c.rvpj")
	writeJournal(t, pa, fp, []race.WindowOutcome{{Window: 0, Events: 10}, w1a}, Options{})
	writeJournal(t, pb, fp, []race.WindowOutcome{w1b, w2}, Options{})
	writeJournal(t, pc, fp, []race.WindowOutcome{w1c, w2, {Window: 3, Offset: 30, Events: 4}}, Options{})

	outcomes, tornTails, conflicts, err := RecoverShards([]string{pa, pb, pc}, fp)
	if err != nil {
		t.Fatalf("RecoverShards: %v", err)
	}
	if tornTails != 0 {
		t.Errorf("tornTails = %d, want 0", tornTails)
	}
	// Losers: w1b, w1c (disagreeing) and the second w2 (agreeing — still
	// a discarded duplicate).
	if conflicts != 3 {
		t.Errorf("conflicts = %d, want 3", conflicts)
	}
	if len(outcomes) != 4 {
		t.Fatalf("outcomes cover %d windows, want 4", len(outcomes))
	}
	if !reflect.DeepEqual(outcomes[1], w1a) {
		t.Errorf("window 1 = %+v, want the first-listed journal's outcome %+v", outcomes[1], w1a)
	}

	// Determinism: re-running with the same order gives the same winner;
	// reversing the order flips the winner to the new first-listed
	// journal — the rule depends only on list order, nothing hidden.
	again, _, _, err := RecoverShards([]string{pa, pb, pc}, fp)
	if err != nil {
		t.Fatalf("RecoverShards (again): %v", err)
	}
	if !reflect.DeepEqual(again, outcomes) {
		t.Error("same journal order produced different outcomes")
	}
	rev, _, revConflicts, err := RecoverShards([]string{pc, pb, pa}, fp)
	if err != nil {
		t.Fatalf("RecoverShards (reversed): %v", err)
	}
	if !reflect.DeepEqual(rev[1], w1c) {
		t.Errorf("reversed order: window 1 = %+v, want first-listed %+v", rev[1], w1c)
	}
	if revConflicts != 3 {
		t.Errorf("reversed order: conflicts = %d, want 3", revConflicts)
	}
}

// TestEncodeDecodeOutcomeRoundTrip pins the exported wire codec the
// fleet protocol uses to the journal's internal record encoding.
func TestEncodeDecodeOutcomeRoundTrip(t *testing.T) {
	for i, out := range testOutcomes() {
		payload := EncodeOutcome(out)
		if len(payload) == 0 {
			t.Fatalf("outcome %d: empty encoding", i)
		}
		got, err := DecodeOutcome(payload)
		if err != nil {
			t.Fatalf("outcome %d: DecodeOutcome: %v", i, err)
		}
		if !reflect.DeepEqual(got, out) {
			t.Errorf("outcome %d did not round-trip:\n got %+v\nwant %+v", i, got, out)
		}
		if !reflect.DeepEqual(payload, encodeOutcome(out)) {
			t.Errorf("outcome %d: EncodeOutcome diverges from the journal's record encoding", i)
		}
	}
}
