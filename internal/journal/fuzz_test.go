package journal

import (
	"bytes"
	"crypto/sha256"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/race"
)

// FuzzJournalDecode hardens journal recovery against corrupt files: the
// decoder must classify any input as a valid journal, a torn tail, or a
// format/fingerprint error — never panic, over-allocate or report an
// intact prefix longer than the input.
func FuzzJournalDecode(f *testing.F) {
	// Seed with a valid journal and structured mutants of it.
	var valid []byte
	{
		var e encBuf
		e.raw([]byte(Magic))
		e.uvarint(Version)
		fp := Fingerprint{
			Trace:   sha256.Sum256([]byte("t")),
			Options: sha256.Sum256([]byte("o")),
		}
		e.frame(append(append([]byte{}, fp.Trace[:]...), fp.Options[:]...))
		e.frame(encodeOutcome(race.WindowOutcome{
			Window: 0, Offset: 0, Events: 8, Candidates: 2, Solved: 1, COPsChecked: 1,
			Races: []race.Race{{
				COP:     race.COP{A: 1, B: 5},
				Sig:     race.Signature{First: 3, Second: 4},
				Witness: []int{0, 1, 5},
			}},
		}))
		e.frame(encodeOutcome(race.WindowOutcome{
			Window: 1, Offset: 8, Events: 8,
			Failures: []race.WindowFailure{{Window: 1, Offset: 8, Events: 8, PanicValue: "p", Stack: "s"}},
		}))
		valid = e.b
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])                               // torn tail
	f.Add(faultinject.Corrupt(valid, len(valid)-1, 0x01))     // bad crc
	f.Add(faultinject.Corrupt(valid, 10, 0x10))               // bad header
	f.Add([]byte(Magic))                                      // magic only
	f.Add([]byte("RVPJ\x01\xff\xff\xff\xff\xff\xff\xff\x7f")) // huge length claim
	f.Add([]byte{})
	f.Add([]byte("RVPT\x01")) // trace-file magic, not a journal

	f.Fuzz(func(t *testing.T, data []byte) {
		fp, info, err := decodeStream(bytes.NewReader(data))
		if err != nil {
			return
		}
		if info.Bytes > int64(len(data)) {
			t.Fatalf("intact prefix %d exceeds input length %d", info.Bytes, len(data))
		}
		// A decodable journal must re-encode its outcomes losslessly:
		// frame each decoded outcome again and re-decode it.
		for _, out := range info.Outcomes {
			var e encBuf
			e.frame(encodeOutcome(out))
			again, err := decodeOutcome(encodeOutcome(out))
			if err != nil {
				t.Fatalf("re-decode of decoded outcome failed: %v", err)
			}
			if again.Window != out.Window || len(again.Races) != len(out.Races) {
				t.Fatalf("outcome did not survive re-encode: %+v vs %+v", again, out)
			}
		}
		_ = fp
	})
}
