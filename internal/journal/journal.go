// Package journal makes long detection runs crash-safe. It persists each
// completed analysis window's outcome (races with witnesses, isolated
// failures, counter deltas) to an append-only record log, so that a run
// killed by a crash, OOM or preemption can be resumed with -resume: the
// journaled windows are replayed into the canonical merge and only the
// unfinished windows re-enter the solver. Windows are analysed
// independently and merged deterministically (see internal/core), which
// is exactly what makes the per-window outcome a sound checkpoint unit.
//
// # On-disk format
//
// A journal is a 4-byte magic ("RVPJ"), a uvarint format version, and a
// sequence of frames. Every frame — the header included — is
//
//	uvarint(len(payload)) ‖ payload ‖ crc32c(lenbytes ‖ payload)
//
// with the CRC (Castagnoli polynomial) stored as 4 little-endian bytes.
// The first frame's payload is the 64-byte run fingerprint: a SHA-256 of
// the canonically encoded input trace followed by a SHA-256 of the
// canonical encoding of the result-affecting options. Every later frame
// is one window outcome, varint-encoded (see encodeOutcome).
//
// # Torn tails
//
// Appends are sequential and fsynced in batches (group commit), so the
// only corruption an interrupted writer can produce is at the tail: a
// record whose length prefix, payload or CRC is incomplete or wrong.
// Recovery reads frames until the first one that fails its length or CRC
// check, keeps everything before it, and reports the tail torn; Resume
// then truncates the file back to the last intact record and appends
// from there. Damage that cannot be a torn tail — a bad magic, version
// or header frame, or a fingerprint that does not match the current run
// — is not silently repaired: it returns ErrFormat or ErrFingerprint and
// the caller must start a fresh journal.
package journal

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/race"
	"repro/internal/telemetry"
	"repro/internal/tracefile"
	"repro/trace"
)

// Magic is the journal file signature; Version the current format.
// Version 2 added per-race provenance (confirming tier, window, solver
// query stats, replay origin); version 3 the degradation markers of the
// streaming daemon (outcome-level Degraded/PairsShed, per-race Degraded
// flag). Older-version journals are rejected as ErrFormat, which Resume
// treats like any unusable journal — the run simply starts fresh.
const (
	Magic   = "RVPJ"
	Version = 3
)

// Decode-hardening caps, in the spirit of tracefile.Decode: a hostile or
// corrupt journal must fail with ErrFormat (or a torn tail) in bounded
// memory, never allocate unbounded buffers or loop forever.
const (
	// maxFrameLen bounds one frame's payload. Real outcome records are a
	// few bytes per counter plus witness indices, far below this.
	maxFrameLen = 1 << 28
	// maxCount bounds every element count in an outcome payload.
	maxCount = 1 << 24
	// maxString bounds panic/stack strings (the producer truncates stacks
	// at 16 KiB).
	maxString = 1 << 20
)

var (
	// ErrFormat reports a journal that is not structurally a journal:
	// wrong magic, unsupported version, or a corrupt header frame. Unlike
	// a torn tail, this is not recoverable by truncation.
	ErrFormat = errors.New("journal: malformed journal")
	// ErrFingerprint reports a structurally valid journal written by a
	// different run — another trace, or result-affecting options that
	// changed. Resuming it would splice unrelated results into the
	// report, so recovery refuses.
	ErrFingerprint = errors.New("journal: fingerprint mismatch")
	// ErrClosed reports an append to a closed writer.
	ErrClosed = errors.New("journal: writer is closed")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Fingerprint binds a journal to one run: the content hash of the input
// trace and the hash of the canonical encoding of the result-affecting
// options. Two runs share a fingerprint iff their per-window outcomes are
// interchangeable.
type Fingerprint struct {
	Trace   [sha256.Size]byte
	Options [sha256.Size]byte
}

// TraceFingerprint hashes tr's canonical binary encoding
// (tracefile.Encode, which is deterministic for a given trace).
func TraceFingerprint(tr *trace.Trace) ([sha256.Size]byte, error) {
	h := sha256.New()
	if err := tracefile.Encode(h, tr); err != nil {
		return [sha256.Size]byte{}, fmt.Errorf("journal: fingerprinting trace: %w", err)
	}
	var out [sha256.Size]byte
	copy(out[:], h.Sum(nil))
	return out, nil
}

// OptionsFingerprint hashes a canonical textual encoding of the
// result-affecting options. The caller owns the encoding (rvpredict
// builds it from its normalised Options); this helper just fixes the
// hash.
func OptionsFingerprint(canonical string) [sha256.Size]byte {
	return sha256.Sum256([]byte(canonical))
}

// Options configures a journal writer.
type Options struct {
	// GroupCommit batches fsyncs: an append only syncs when this much
	// wall-clock has passed since the previous sync (Close always
	// syncs). ≤ 0 syncs after every record — maximally durable,
	// measurably slower. A crash loses at most the records of one
	// commit interval; resume simply re-analyses those windows, so
	// exactness is unaffected either way.
	GroupCommit time.Duration
	// Telemetry, when non-nil, receives the journal counters
	// (records/bytes written, fsync time).
	Telemetry *telemetry.Collector
	// FaultInjector, when non-nil, arms the PointJournalAppend crash
	// point. Test-only.
	FaultInjector *faultinject.Injector
}

// Writer appends window outcomes to a journal file. Append is safe for
// concurrent use — parallel window workers complete in arbitrary order —
// and each record is written with a single Write call, so records never
// interleave.
type Writer struct {
	mu       sync.Mutex
	f        *os.File
	opt      Options
	lastSync time.Time
	dirty    bool
	closed   bool
}

// Create starts a fresh journal at path (truncating any previous file)
// and durably writes the header for fingerprint fp.
func Create(path string, fp Fingerprint, opt Options) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var e encBuf
	e.raw([]byte(Magic))
	e.uvarint(Version)
	header := append(append([]byte{}, fp.Trace[:]...), fp.Options[:]...)
	e.frame(header)
	if _, err := f.Write(e.b); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: writing header: %w", err)
	}
	w := &Writer{f: f, opt: opt}
	opt.Telemetry.CountJournalWrite(0, len(e.b))
	if err := w.sync(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// Append durably records one window outcome. With group commit enabled
// the record may not be fsynced until a later append or Close; see
// Options.GroupCommit.
func (w *Writer) Append(out race.WindowOutcome) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	var e encBuf
	e.frame(encodeOutcome(out))
	fault := w.opt.FaultInjector.Fire(faultinject.PointJournalAppend)
	if fault == faultinject.FaultCrashTorn {
		// Die mid-record: persist only a prefix of the frame, leaving
		// the torn tail recovery must detect and truncate.
		w.f.Write(e.b[:len(e.b)/2])
		w.f.Sync()
		faultinject.CrashNow()
	}
	if _, err := w.f.Write(e.b); err != nil {
		return fmt.Errorf("journal: appending window %d: %w", out.Window, err)
	}
	w.opt.Telemetry.CountJournalWrite(1, len(e.b))
	w.dirty = true
	if fault == faultinject.FaultCrash {
		// Die between two clean records: the full frame is durable.
		w.syncLocked()
		faultinject.CrashNow()
	}
	if w.opt.GroupCommit <= 0 || time.Since(w.lastSync) >= w.opt.GroupCommit {
		return w.syncLocked()
	}
	return nil
}

// Sync forces any buffered records to stable storage.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	return w.syncLocked()
}

// sync fsyncs without holding the mutex (used before the writer is
// shared); syncLocked is the under-lock variant.
func (w *Writer) sync() error { return w.syncLocked() }

func (w *Writer) syncLocked() error {
	t0 := time.Time{}
	if w.opt.Telemetry.Enabled() {
		t0 = time.Now()
	}
	// Fsync stalls land on the run lane of the timeline: they block the
	// window-completion hook that journals outcomes.
	sp := w.opt.Telemetry.BeginSpan("journal fsync", telemetry.RunLane(), w.opt.Telemetry.SpanRoot())
	err := w.f.Sync()
	sp.End()
	if !t0.IsZero() {
		w.opt.Telemetry.AddJournalFsync(time.Since(t0))
	}
	if err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	w.dirty = false
	w.lastSync = time.Now()
	return nil
}

// Close syncs outstanding records and closes the file. Further appends
// return ErrClosed.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	var err error
	if w.dirty {
		err = w.syncLocked()
	}
	if cerr := w.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("journal: close: %w", cerr)
	}
	return err
}

// RecoverInfo is the result of reading back a journal.
type RecoverInfo struct {
	// Outcomes holds the intact window records, in append order.
	Outcomes []race.WindowOutcome
	// TornTail reports that a truncated or corrupt tail region followed
	// the last intact record (and, under Resume, was truncated away).
	TornTail bool
	// Bytes is the length of the intact prefix — the offset the next
	// append lands at after Resume truncates.
	Bytes int64
}

// Recover reads the journal at path, verifies its fingerprint against
// fp, and returns every intact window outcome. A torn tail is reported,
// not an error; header-level damage returns ErrFormat and a foreign
// fingerprint returns ErrFingerprint.
func Recover(path string, fp Fingerprint) (RecoverInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return RecoverInfo{}, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	got, info, err := decodeStream(f)
	if err != nil {
		return RecoverInfo{}, err
	}
	if got != fp {
		switch {
		case got.Trace != fp.Trace:
			return RecoverInfo{}, fmt.Errorf("%w: journal was written for a different trace", ErrFingerprint)
		default:
			return RecoverInfo{}, fmt.Errorf("%w: journal was written with different result-affecting options", ErrFingerprint)
		}
	}
	return info, nil
}

// RecoverShards recovers several shard journals written against the
// same fingerprint and combines their window outcomes into one
// window-index → outcome map — the coordinator side of a multi-process
// sharded run (rvpredict.MergeShards). Every journal must verify
// against fp; a mismatch on any shard fails the whole merge, because a
// foreign shard's outcomes would silently poison the combined report.
// Shards journal disjoint window sets under the deterministic
// index-mod-N partition, but duplicates (overlapping shard ranges, a
// shard restarted under a different layout, a fleet's speculative
// re-execution) are tolerated: the earliest-listed journal wins, which
// is result-identical because a window's outcome depends only on its
// content, never on which shard analysed it. Torn tails are truncated
// per journal exactly as Recover reports them; tornTails counts how
// many journals had one; conflicts counts the losing duplicates — the
// window records discarded because an earlier-listed journal already
// supplied that window.
func RecoverShards(paths []string, fp Fingerprint) (outcomes map[int]race.WindowOutcome, tornTails, conflicts int, err error) {
	outcomes = make(map[int]race.WindowOutcome)
	for _, path := range paths {
		info, err := Recover(path, fp)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("shard journal %s: %w", path, err)
		}
		if info.TornTail {
			tornTails++
		}
		for _, out := range info.Outcomes {
			if _, ok := outcomes[out.Window]; !ok {
				outcomes[out.Window] = out
			} else {
				conflicts++
			}
		}
	}
	return outcomes, tornTails, conflicts, nil
}

// Inspect reads the journal at path without verifying its fingerprint,
// returning the header fingerprint alongside the intact records. It
// exists for diagnostics and tests; resuming a run must go through
// Recover or Resume so a foreign journal is refused.
func Inspect(path string) (Fingerprint, RecoverInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return Fingerprint{}, RecoverInfo{}, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	return decodeStream(f)
}

// Resume recovers the journal at path, truncates any torn tail in place,
// and reopens it for appending. The returned writer continues the same
// journal: windows analysed after the resume are appended behind the
// replayed ones.
func Resume(path string, fp Fingerprint, opt Options) (*Writer, RecoverInfo, error) {
	info, err := Recover(path, fp)
	if err != nil {
		return nil, RecoverInfo{}, err
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, RecoverInfo{}, fmt.Errorf("journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, RecoverInfo{}, fmt.Errorf("journal: %w", err)
	}
	if st.Size() > info.Bytes {
		if err := f.Truncate(info.Bytes); err != nil {
			f.Close()
			return nil, RecoverInfo{}, fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(info.Bytes, io.SeekStart); err != nil {
		f.Close()
		return nil, RecoverInfo{}, fmt.Errorf("journal: %w", err)
	}
	w := &Writer{f: f, opt: opt}
	if err := w.sync(); err != nil {
		f.Close()
		return nil, RecoverInfo{}, err
	}
	return w, info, nil
}

// WriteFileAtomic writes data to path crash-safely: the bytes go to a
// same-directory temp file, are fsynced, and the temp file is renamed
// over path — so path either keeps its previous content or holds all of
// data, never a prefix. in, when non-nil, arms the PointReportFlush
// crash point (test-only).
func WriteFileAtomic(path string, data []byte, in *faultinject.Injector) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	fault := in.Fire(faultinject.PointReportFlush)
	if fault == faultinject.FaultCrashTorn {
		// Die mid-flush: the temp file holds a prefix, the destination
		// is untouched.
		tmp.Write(data[:len(data)/2])
		tmp.Sync()
		faultinject.CrashNow()
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if fault == faultinject.FaultCrash {
		// Die after the flush but before the rename: the destination
		// still holds its previous content.
		faultinject.CrashNow()
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	// Make the rename itself durable. Failure here is not fatal to the
	// caller — the data is fully written either way.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// encBuf accumulates varint-encoded frames.
type encBuf struct {
	b   []byte
	tmp [binary.MaxVarintLen64]byte
}

func (e *encBuf) uvarint(v uint64) {
	n := binary.PutUvarint(e.tmp[:], v)
	e.b = append(e.b, e.tmp[:n]...)
}

func (e *encBuf) varint(v int64) {
	n := binary.PutVarint(e.tmp[:], v)
	e.b = append(e.b, e.tmp[:n]...)
}

func (e *encBuf) raw(p []byte) { e.b = append(e.b, p...) }

func (e *encBuf) str(s string) {
	e.uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}

// frame appends one CRC-framed record: length prefix, payload, and a
// CRC32C over both (covering the length catches a corrupted prefix that
// would otherwise mis-slice the stream).
func (e *encBuf) frame(payload []byte) {
	start := len(e.b)
	e.uvarint(uint64(len(payload)))
	e.b = append(e.b, payload...)
	crc := crc32.Checksum(e.b[start:], castagnoli)
	e.b = binary.LittleEndian.AppendUint32(e.b, crc)
}

// EncodeOutcome returns the canonical journal encoding of one window
// outcome — exactly the payload Append frames into the file. It exists
// for the fleet wire protocol (internal/fleet): workers ship outcomes
// across the wire in this encoding and the coordinator validates them
// with DecodeOutcome before journaling, so a wire record and the
// journal record it becomes are byte-identical.
func EncodeOutcome(out race.WindowOutcome) []byte { return encodeOutcome(out) }

// DecodeOutcome decodes an EncodeOutcome payload with the same
// hardening as journal recovery: every count and string length is
// validated before it drives an allocation, and corruption fails with
// ErrFormat in bounded memory.
func DecodeOutcome(payload []byte) (race.WindowOutcome, error) { return decodeOutcome(payload) }

// encodeOutcome flattens one window outcome to a frame payload. All
// integers are varints; counts precede their elements; witness presence
// is encoded as len+1 so a nil witness (0) survives the round trip
// distinct from an empty one.
func encodeOutcome(out race.WindowOutcome) []byte {
	var e encBuf
	e.uvarint(uint64(out.Window))
	e.uvarint(uint64(out.Offset))
	e.uvarint(uint64(out.Events))
	e.uvarint(uint64(out.Candidates))
	e.uvarint(uint64(out.Solved))
	e.uvarint(uint64(out.COPsChecked))
	e.uvarint(uint64(out.SolverAborts))
	e.uvarint(uint64(out.PairsRetried))
	e.varint(out.ElapsedNS)
	// Degradation marker (format v3): a degraded outcome must replay as
	// degraded — resume never silently upgrades a shed window.
	if out.Degraded {
		e.uvarint(1)
	} else {
		e.uvarint(0)
	}
	e.uvarint(uint64(out.PairsShed))
	e.uvarint(uint64(len(out.Races)))
	for _, r := range out.Races {
		e.uvarint(uint64(r.A))
		e.uvarint(uint64(r.B))
		e.uvarint(uint64(r.Sig.First))
		e.uvarint(uint64(r.Sig.Second))
		if r.Witness == nil {
			e.uvarint(0)
		} else {
			e.uvarint(uint64(len(r.Witness)) + 1)
			for _, idx := range r.Witness {
				e.uvarint(uint64(idx))
			}
		}
		// Provenance (format v2; v3 widens the trailing flag word).
		// Replayed round-trips too: the journal stores the record
		// verbatim, and the replay path re-stamps the flag on merge
		// anyway.
		e.str(r.Prov.Tier)
		e.uvarint(uint64(r.Prov.Window))
		e.varint(r.Prov.Decisions)
		e.varint(r.Prov.Propagations)
		e.varint(r.Prov.Conflicts)
		e.uvarint(uint64(r.Prov.WitnessLen))
		var flags uint64
		if r.Prov.Replayed {
			flags |= 1
		}
		if r.Prov.Degraded {
			flags |= 2
		}
		e.uvarint(flags)
	}
	e.uvarint(uint64(len(out.Failures)))
	for _, f := range out.Failures {
		e.uvarint(uint64(f.Window))
		e.uvarint(uint64(f.Offset))
		e.uvarint(uint64(f.Events))
		e.str(f.PanicValue)
		e.str(f.Stack)
	}
	return e.b
}

// countingReader tracks how many bytes were consumed, so recovery knows
// the exact offset of the last intact record.
type countingReader struct {
	r   *bufio.Reader
	off int64
}

func (c *countingReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		c.off++
	}
	return b, err
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.off += int64(n)
	return n, err
}

// readUvarint is binary.ReadUvarint with the stream's byte budget
// enforced (a varint longer than MaxVarintLen64 is corruption).
func readUvarint(c *countingReader) (uint64, error) {
	var x uint64
	var s uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b, err := c.ReadByte()
		if err != nil {
			if i > 0 && err == io.EOF {
				return 0, io.ErrUnexpectedEOF
			}
			return 0, err
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, ErrFormat
			}
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, ErrFormat
}

// readFrame reads one CRC-framed record. io.EOF means a clean end of
// stream (no bytes of a next frame present); any other error means the
// frame is torn or corrupt.
func readFrame(c *countingReader) ([]byte, error) {
	startOff := c.off
	n, err := readUvarint(c)
	if err != nil {
		return nil, err
	}
	if n > maxFrameLen {
		return nil, ErrFormat
	}
	// Re-encode the length prefix for the CRC: it covers lenbytes‖payload.
	var e encBuf
	e.uvarint(n)
	if int64(len(e.b)) != c.off-startOff {
		return nil, ErrFormat // non-canonical varint encoding
	}
	// Grow the payload buffer incrementally so a hostile length claim
	// cannot force a huge allocation before the stream runs dry.
	payload := make([]byte, 0, min64(n, 1<<16))
	for uint64(len(payload)) < n {
		k := min64(n-uint64(len(payload)), 1<<16)
		old := len(payload)
		payload = append(payload, make([]byte, k)...)
		if _, err := io.ReadFull(c, payload[old:]); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	var crcBytes [4]byte
	if _, err := io.ReadFull(c, crcBytes[:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	crc := crc32.Checksum(e.b, castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	if crc != binary.LittleEndian.Uint32(crcBytes[:]) {
		return nil, ErrFormat
	}
	return payload, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// decodeStream reads a whole journal: header fingerprint, then window
// records until the stream ends cleanly or tears. Header-level damage is
// an error; record-level damage sets TornTail and keeps the intact
// prefix.
func decodeStream(r io.Reader) (Fingerprint, RecoverInfo, error) {
	c := &countingReader{r: bufio.NewReader(r)}
	var fp Fingerprint
	var magic [4]byte
	if _, err := io.ReadFull(c, magic[:]); err != nil || string(magic[:]) != Magic {
		return fp, RecoverInfo{}, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	ver, err := readUvarint(c)
	if err != nil || ver != Version {
		return fp, RecoverInfo{}, fmt.Errorf("%w: unsupported version", ErrFormat)
	}
	header, err := readFrame(c)
	if err != nil || len(header) != 2*sha256.Size {
		return fp, RecoverInfo{}, fmt.Errorf("%w: bad header", ErrFormat)
	}
	copy(fp.Trace[:], header[:sha256.Size])
	copy(fp.Options[:], header[sha256.Size:])
	info := RecoverInfo{Bytes: c.off}
	for {
		payload, err := readFrame(c)
		if err == io.EOF {
			break
		}
		if err != nil {
			info.TornTail = true
			break
		}
		out, err := decodeOutcome(payload)
		if err != nil {
			info.TornTail = true
			break
		}
		info.Outcomes = append(info.Outcomes, out)
		info.Bytes = c.off
	}
	return fp, info, nil
}

// decBuf consumes a frame payload.
type decBuf struct{ b []byte }

func (d *decBuf) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		return 0, ErrFormat
	}
	d.b = d.b[n:]
	return v, nil
}

func (d *decBuf) intVal() (int, error) {
	v, err := d.uvarint()
	if err != nil || v > maxFrameLen {
		return 0, ErrFormat
	}
	return int(v), nil
}

func (d *decBuf) count() (int, error) {
	v, err := d.uvarint()
	if err != nil || v > maxCount || v > uint64(len(d.b)) {
		// Every counted element occupies at least one payload byte, so a
		// count beyond the remaining bytes is corruption — reject before
		// allocating.
		return 0, ErrFormat
	}
	return int(v), nil
}

func (d *decBuf) varint() (int64, error) {
	v, n := binary.Varint(d.b)
	if n <= 0 {
		return 0, ErrFormat
	}
	d.b = d.b[n:]
	return v, nil
}

func (d *decBuf) str() (string, error) {
	n, err := d.uvarint()
	if err != nil || n > maxString || n > uint64(len(d.b)) {
		return "", ErrFormat
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s, nil
}

// decodeOutcome is the inverse of encodeOutcome, hardened against
// corrupt payloads (bounded counts, no trailing garbage).
func decodeOutcome(payload []byte) (race.WindowOutcome, error) {
	d := &decBuf{b: payload}
	var out race.WindowOutcome
	var err error
	read := func(dst *int) {
		if err == nil {
			*dst, err = d.intVal()
		}
	}
	read(&out.Window)
	read(&out.Offset)
	read(&out.Events)
	read(&out.Candidates)
	read(&out.Solved)
	read(&out.COPsChecked)
	read(&out.SolverAborts)
	read(&out.PairsRetried)
	if err == nil {
		out.ElapsedNS, err = d.varint()
	}
	var degraded uint64
	if err == nil {
		degraded, err = d.uvarint()
	}
	if err == nil && degraded > 1 {
		err = ErrFormat
	}
	out.Degraded = degraded == 1
	read(&out.PairsShed)
	if err != nil {
		return out, err
	}
	nRaces, err := d.count()
	if err != nil {
		return out, err
	}
	for i := 0; i < nRaces; i++ {
		var r race.Race
		var sigA, sigB uint64
		read(&r.A)
		read(&r.B)
		if err == nil {
			sigA, err = d.uvarint()
		}
		if err == nil {
			sigB, err = d.uvarint()
		}
		if err != nil {
			return out, err
		}
		if sigA > math.MaxUint32 || sigB > math.MaxUint32 {
			return out, ErrFormat // trace.Loc is 32-bit
		}
		r.Sig = race.Signature{First: trace.Loc(sigA), Second: trace.Loc(sigB)}
		wlen, werr := d.count()
		if werr != nil {
			return out, werr
		}
		if wlen > 0 {
			r.Witness = make([]int, wlen-1)
			for j := range r.Witness {
				read(&r.Witness[j])
			}
			if err != nil {
				return out, err
			}
		}
		if err == nil {
			r.Prov.Tier, err = d.str()
		}
		read(&r.Prov.Window)
		if err == nil {
			r.Prov.Decisions, err = d.varint()
		}
		if err == nil {
			r.Prov.Propagations, err = d.varint()
		}
		if err == nil {
			r.Prov.Conflicts, err = d.varint()
		}
		read(&r.Prov.WitnessLen)
		var flags uint64
		if err == nil {
			flags, err = d.uvarint()
		}
		if err != nil {
			return out, err
		}
		if flags > 3 {
			return out, ErrFormat
		}
		r.Prov.Replayed = flags&1 != 0
		r.Prov.Degraded = flags&2 != 0
		out.Races = append(out.Races, r)
	}
	nFail, err := d.count()
	if err != nil {
		return out, err
	}
	for i := 0; i < nFail; i++ {
		var f race.WindowFailure
		read(&f.Window)
		read(&f.Offset)
		read(&f.Events)
		if err == nil {
			f.PanicValue, err = d.str()
		}
		if err == nil {
			f.Stack, err = d.str()
		}
		if err != nil {
			return out, err
		}
		out.Failures = append(out.Failures, f)
	}
	if len(d.b) != 0 {
		return out, ErrFormat
	}
	return out, nil
}
