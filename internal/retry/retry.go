// Package retry provides the shared exponential-backoff-with-jitter
// retry schedule used by every reconnecting client in the system: the
// capture streaming client (capture.StreamTrace) and the fleet worker
// (internal/fleet). It exists so the backoff shape — doubling from a
// floor, capped at a ceiling, ±25% jitter to spread a reconnecting herd
// — is defined once and tested deterministically.
//
// The schedule is attempt-indexed, not wall-clock-indexed: Delay(n) is
// the delay before the nth consecutive failed attempt's retry. Do adds
// the loop policy the capture client pioneered: a progressed attempt
// (one that did useful work before failing) resets the consecutive
// failure counter, permanent errors abort immediately, and context
// cancellation wins over any sleep.
//
// Randomness and sleeping are injectable (Policy.Rand, Policy.Sleep) so
// tests run instantly and reproducibly; production callers leave both
// nil.
package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Defaults applied by Policy.withDefaults, shared with the option docs
// of every caller.
const (
	DefaultMin         = 100 * time.Millisecond
	DefaultMax         = 5 * time.Second
	DefaultMaxAttempts = 8
)

// Policy describes one exponential-backoff retry schedule.
type Policy struct {
	// Min is the first retry's delay (default 100ms). Each further
	// consecutive failure doubles it.
	Min time.Duration
	// Max caps the delay (default 5s; raised to Min when smaller).
	Max time.Duration
	// MaxAttempts bounds consecutive failed attempts before Do gives
	// up with an *ExhaustedError (default 8). Attempts that report
	// progress reset the counter, so a long-lived operation survives
	// any number of transient failures as long as retries keep
	// succeeding.
	MaxAttempts int
	// OnRetry, when non-nil, observes each retry Do is about to
	// perform: the consecutive failure count and the error being
	// retried.
	OnRetry func(attempt int, err error)
	// Rand, when non-nil, replaces math/rand's Int63n as the jitter
	// source — tests inject a deterministic function so Delay is
	// reproducible. It must return a value in [0, n).
	Rand func(n int64) int64
	// Sleep, when non-nil, replaces the timer-based context-aware
	// sleep — tests inject a recording clock so Do runs without real
	// waits. It must return ctx.Err() if the context ends first.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (p Policy) withDefaults() Policy {
	if p.Min <= 0 {
		p.Min = DefaultMin
	}
	if p.Max < p.Min {
		p.Max = DefaultMax
		if p.Max < p.Min {
			p.Max = p.Min
		}
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.Rand == nil {
		p.Rand = rand.Int63n
	}
	if p.Sleep == nil {
		p.Sleep = sleepCtx
	}
	return p
}

// Delay returns the delay before retrying the attempt-th consecutive
// failure (attempt ≥ 1): exponential from Min, capped at Max, with ±25%
// jitter so a herd of reconnecting clients spreads out.
func (p Policy) Delay(attempt int) time.Duration {
	p = p.withDefaults()
	d := p.Min
	for i := 1; i < attempt && d < p.Max; i++ {
		d *= 2
	}
	if d > p.Max {
		d = p.Max
	}
	quarter := int64(d / 4)
	if quarter > 0 {
		d += time.Duration(p.Rand(2*quarter+1) - quarter)
	}
	return d
}

// Wait sleeps for Delay(attempt), returning early with ctx.Err() if the
// context ends first.
func (p Policy) Wait(ctx context.Context, attempt int) error {
	d := p.Delay(attempt)
	return p.withDefaults().Sleep(ctx, d)
}

// Op is one attempt of a retryable operation. progressed reports that
// the attempt did useful durable work before failing (e.g. a streaming
// session was admitted and events reached stable storage), which resets
// Do's consecutive-failure counter; a nil error ends the loop.
type Op func(ctx context.Context) (progressed bool, err error)

// Permanent is the interface matched (via errors.As) to recognise
// errors that no retry can fix: when Permanent() reports true, Do
// returns the error immediately instead of retrying.
// stream.RejectError implements it.
type Permanent interface {
	error
	Permanent() bool
}

// ExhaustedError reports that Do gave up after MaxAttempts consecutive
// failures. It wraps the final attempt's error, so errors.Is/As see
// through it.
type ExhaustedError struct {
	Attempts int
	Err      error
}

func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("retry: giving up after %d attempts: %v", e.Attempts, e.Err)
}

func (e *ExhaustedError) Unwrap() error { return e.Err }

// Do runs op until it succeeds, sleeping Delay(n) between consecutive
// failures. It returns nil on success; the error unchanged when it is
// permanent (see Permanent) or the context ended; and an
// *ExhaustedError wrapping the last error after MaxAttempts consecutive
// non-progressing failures.
func Do(ctx context.Context, p Policy, op Op) error {
	if ctx == nil {
		ctx = context.Background()
	}
	p = p.withDefaults()
	attempt := 0
	for {
		progressed, err := op(ctx)
		if err == nil {
			return nil
		}
		if progressed {
			attempt = 0
		}
		attempt++
		var perm Permanent
		if errors.As(err, &perm) && perm.Permanent() {
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if attempt >= p.MaxAttempts {
			return &ExhaustedError{Attempts: attempt, Err: err}
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt, err)
		}
		if werr := p.Wait(ctx, attempt); werr != nil {
			return werr
		}
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
