package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// midRand returns the midpoint of [0, n), which for Delay's jitter draw
// of Int63n(2*quarter+1) yields exactly quarter — i.e. zero net jitter —
// making the schedule fully deterministic.
func midRand(n int64) int64 { return n / 2 }

// fakeClock records requested sleeps without waiting.
type fakeClock struct {
	slept []time.Duration
}

func (c *fakeClock) sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.slept = append(c.slept, d)
	return nil
}

func TestDelayExponentialDeterministic(t *testing.T) {
	p := Policy{Min: 100 * time.Millisecond, Max: 5 * time.Second, Rand: midRand}
	want := []time.Duration{
		100 * time.Millisecond, // attempt 1
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		3200 * time.Millisecond,
		5 * time.Second, // 6400ms capped
		5 * time.Second,
	}
	for i, w := range want {
		if got := p.Delay(i + 1); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestDelayJitterBounded(t *testing.T) {
	p := Policy{Min: 1 * time.Second, Max: 1 * time.Second}
	for i := 0; i < 200; i++ {
		d := p.Delay(1)
		if d < 750*time.Millisecond || d > 1250*time.Millisecond {
			t.Fatalf("Delay(1) = %v, want within ±25%% of 1s", d)
		}
	}
}

func TestDoRetriesThenSucceeds(t *testing.T) {
	clock := &fakeClock{}
	var attempts []int
	p := Policy{
		Min: 10 * time.Millisecond, Max: 80 * time.Millisecond, MaxAttempts: 8,
		Rand:  midRand,
		Sleep: clock.sleep,
		OnRetry: func(attempt int, err error) {
			attempts = append(attempts, attempt)
		},
	}
	calls := 0
	err := Do(context.Background(), p, func(ctx context.Context) (bool, error) {
		calls++
		if calls < 4 {
			return false, fmt.Errorf("transient %d", calls)
		}
		return false, nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 4 {
		t.Errorf("calls = %d, want 4", calls)
	}
	wantAttempts := []int{1, 2, 3}
	if fmt.Sprint(attempts) != fmt.Sprint(wantAttempts) {
		t.Errorf("OnRetry attempts = %v, want %v", attempts, wantAttempts)
	}
	wantSleeps := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if fmt.Sprint(clock.slept) != fmt.Sprint(wantSleeps) {
		t.Errorf("sleeps = %v, want %v", clock.slept, wantSleeps)
	}
}

func TestDoProgressResetsCounter(t *testing.T) {
	clock := &fakeClock{}
	p := Policy{Min: time.Millisecond, MaxAttempts: 3, Rand: midRand, Sleep: clock.sleep}
	var attempts []int
	p.OnRetry = func(attempt int, err error) { attempts = append(attempts, attempt) }
	calls := 0
	err := Do(context.Background(), p, func(ctx context.Context) (bool, error) {
		calls++
		if calls < 10 {
			// Every attempt makes progress, so the consecutive-failure
			// counter never reaches MaxAttempts.
			return true, errors.New("transient")
		}
		return true, nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 10 {
		t.Errorf("calls = %d, want 10", calls)
	}
	for _, a := range attempts {
		if a != 1 {
			t.Fatalf("OnRetry attempts = %v, want all 1 (progress resets the counter)", attempts)
		}
	}
}

func TestDoExhausts(t *testing.T) {
	clock := &fakeClock{}
	p := Policy{Min: time.Millisecond, MaxAttempts: 3, Rand: midRand, Sleep: clock.sleep}
	sentinel := errors.New("boom")
	err := Do(context.Background(), p, func(ctx context.Context) (bool, error) {
		return false, sentinel
	})
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("Do = %v, want *ExhaustedError", err)
	}
	if ex.Attempts != 3 {
		t.Errorf("Attempts = %d, want 3", ex.Attempts)
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("errors.Is(err, sentinel) = false, want the last error wrapped")
	}
	if len(clock.slept) != 2 {
		t.Errorf("slept %d times, want 2 (no sleep after the final attempt)", len(clock.slept))
	}
}

type permErr struct{ perm bool }

func (e *permErr) Error() string   { return "perm" }
func (e *permErr) Permanent() bool { return e.perm }

func TestDoPermanentAborts(t *testing.T) {
	clock := &fakeClock{}
	p := Policy{Min: time.Millisecond, MaxAttempts: 8, Rand: midRand, Sleep: clock.sleep}
	want := &permErr{perm: true}
	calls := 0
	err := Do(context.Background(), p, func(ctx context.Context) (bool, error) {
		calls++
		return false, fmt.Errorf("wrapped: %w", want)
	})
	if !errors.Is(err, want) {
		t.Fatalf("Do = %v, want the permanent error", err)
	}
	if calls != 1 || len(clock.slept) != 0 {
		t.Errorf("calls = %d, sleeps = %d; want 1 call and no sleeps", calls, len(clock.slept))
	}

	// A Permanent() == false implementer is retried like any error.
	calls = 0
	err = Do(context.Background(), p, func(ctx context.Context) (bool, error) {
		calls++
		if calls < 2 {
			return false, &permErr{perm: false}
		}
		return false, nil
	})
	if err != nil || calls != 2 {
		t.Errorf("Do = %v after %d calls, want nil after 2", err, calls)
	}
}

func TestDoContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{Min: time.Millisecond, MaxAttempts: 8, Rand: midRand}
	calls := 0
	err := Do(ctx, p, func(ctx context.Context) (bool, error) {
		calls++
		cancel()
		return false, errors.New("transient")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1", calls)
	}
}

func TestPolicyDefaults(t *testing.T) {
	p := Policy{}.withDefaults()
	if p.Min != DefaultMin || p.Max != DefaultMax || p.MaxAttempts != DefaultMaxAttempts {
		t.Errorf("defaults = {%v %v %d}, want {%v %v %d}",
			p.Min, p.Max, p.MaxAttempts, DefaultMin, DefaultMax, DefaultMaxAttempts)
	}
	// Max below Min is raised to Min.
	p = Policy{Min: 10 * time.Second, Max: time.Second}.withDefaults()
	if p.Max != 10*time.Second {
		t.Errorf("Max = %v, want raised to Min (10s)", p.Max)
	}
}
