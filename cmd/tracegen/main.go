// Command tracegen generates the synthetic benchmark traces of the
// evaluation (Table 1 rows) and writes them as trace files for
// cmd/rvpredict.
//
// Usage:
//
//	tracegen -list
//	tracegen -row derby -out derby.rvpt
//	tracegen -row ftpserver -events 20000 -out ftp.rvpt
//	tracegen -row ftpserver -events 10000000 -threads 32 -format chunked -out ftp.rvc2
//
// -events and -threads scale a row's workload up or down (the planted
// races stay planted; only the filler volume and worker count change),
// which is how the out-of-core evaluation produces its 10M+ event
// traces. -format chunked writes the columnar chunked format
// (internal/tracev2) directly — the trace is built in memory and
// streamed out, so the chunked file never exists twice.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/tracefile"
	"repro/internal/tracev2"
	"repro/internal/workloads"
	"repro/trace"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list available benchmark rows")
		row       = flag.String("row", "", "benchmark row to generate")
		out       = flag.String("out", "", "output file (default <row>.rvpt, or <row>.rvc2 for -format chunked)")
		events    = flag.Int("events", 0, "override the row's event count")
		threads   = flag.Int("threads", 0, "override the row's worker thread count")
		seed      = flag.Int64("seed", 0, "override the row's random seed")
		format    = flag.String("format", "legacy", "output format: legacy (.rvpt) or chunked (.rvc2)")
		chunkSize = flag.Int("chunk-size", tracev2.DefaultChunkSize, "events per chunk for -format chunked")
	)
	flag.Parse()

	var chunked bool
	switch strings.ToLower(*format) {
	case "legacy":
	case "chunked":
		chunked = true
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown -format %q (want legacy or chunked)\n", *format)
		os.Exit(2)
	}

	if *list {
		fmt.Printf("%-12s %8s %7s  planted races (QC/HB/CP/Said/RV)\n", "row", "events", "threads")
		tr, exp := workloads.Example()
		fmt.Printf("%-12s %8d %7d  %d/%d/%d/%d/%d\n", "example",
			tr.Len(), tr.ComputeStats().Threads, exp.QC, exp.HB, exp.CP, exp.Said, exp.RV)
		for _, spec := range workloads.Rows() {
			_, exp := workloads.Build(specScaled(spec, 0, 0, 0))
			fmt.Printf("%-12s %8d %7d  %d/%d/%d/%d/%d\n", spec.Name,
				spec.Events, spec.Workers+1, exp.QC, exp.HB, exp.CP, exp.Said, exp.RV)
		}
		return
	}

	if *row == "" {
		fmt.Fprintln(os.Stderr, "usage: tracegen -row <name> [-events N] [-threads K] [-format legacy|chunked] [-out file] (or -list)")
		os.Exit(2)
	}
	if *row == "example" {
		tr, _ := workloads.Example()
		writeTrace(outName(*out, *row, chunked), tr, chunked, *chunkSize)
		return
	}
	for _, spec := range workloads.Rows() {
		if spec.Name == *row {
			tr, exp := workloads.Build(specScaled(spec, *events, *threads, *seed))
			fmt.Printf("%s: %d events, planted QC=%d HB=%d CP=%d Said=%d RV=%d\n",
				spec.Name, tr.Len(), exp.QC, exp.HB, exp.CP, exp.Said, exp.RV)
			writeTrace(outName(*out, *row, chunked), tr, chunked, *chunkSize)
			return
		}
	}
	fmt.Fprintf(os.Stderr, "tracegen: unknown row %q (try -list)\n", *row)
	os.Exit(1)
}

func specScaled(spec workloads.Spec, events, threads int, seed int64) workloads.Spec {
	if events > 0 {
		spec.Events = events
	}
	if threads > 0 {
		spec.Workers = threads
	}
	if seed != 0 {
		spec.Seed = seed
	}
	return spec
}

func outName(out, row string, chunked bool) string {
	if out != "" {
		return out
	}
	if chunked {
		return row + ".rvc2"
	}
	return row + ".rvpt"
}

func writeTrace(path string, tr *trace.Trace, chunked bool, chunkSize int) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if chunked {
		err = tracev2.WriteTrace(f, tr, chunkSize)
	} else {
		err = tracefile.Encode(f, tr)
	}
	if err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
