// Command tracegen generates the synthetic benchmark traces of the
// evaluation (Table 1 rows) and writes them as trace files for
// cmd/rvpredict.
//
// Usage:
//
//	tracegen -list
//	tracegen -row derby -out derby.rvpt
//	tracegen -row ftpserver -events 20000 -out ftp.rvpt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/tracefile"
	"repro/internal/workloads"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list available benchmark rows")
		row    = flag.String("row", "", "benchmark row to generate")
		out    = flag.String("out", "", "output file (default <row>.rvpt)")
		events = flag.Int("events", 0, "override the row's event count")
		seed   = flag.Int64("seed", 0, "override the row's random seed")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-12s %8s %7s  planted races (QC/HB/CP/Said/RV)\n", "row", "events", "threads")
		tr, exp := workloads.Example()
		fmt.Printf("%-12s %8d %7d  %d/%d/%d/%d/%d\n", "example",
			tr.Len(), tr.ComputeStats().Threads, exp.QC, exp.HB, exp.CP, exp.Said, exp.RV)
		for _, spec := range workloads.Rows() {
			_, exp := workloads.Build(specScaled(spec, 0, 0))
			fmt.Printf("%-12s %8d %7d  %d/%d/%d/%d/%d\n", spec.Name,
				spec.Events, spec.Workers+1, exp.QC, exp.HB, exp.CP, exp.Said, exp.RV)
		}
		return
	}

	if *row == "" {
		fmt.Fprintln(os.Stderr, "usage: tracegen -row <name> [-out file] (or -list)")
		os.Exit(2)
	}
	var (
		trc any
		err error
	)
	_ = trc
	_ = err
	if *row == "example" {
		tr, _ := workloads.Example()
		write(outName(*out, *row), func(f *os.File) error { return tracefile.Encode(f, tr) })
		return
	}
	for _, spec := range workloads.Rows() {
		if spec.Name == *row {
			tr, exp := workloads.Build(specScaled(spec, *events, *seed))
			fmt.Printf("%s: %d events, planted QC=%d HB=%d CP=%d Said=%d RV=%d\n",
				spec.Name, tr.Len(), exp.QC, exp.HB, exp.CP, exp.Said, exp.RV)
			write(outName(*out, *row), func(f *os.File) error { return tracefile.Encode(f, tr) })
			return
		}
	}
	fmt.Fprintf(os.Stderr, "tracegen: unknown row %q (try -list)\n", *row)
	os.Exit(1)
}

func specScaled(spec workloads.Spec, events int, seed int64) workloads.Spec {
	if events > 0 {
		spec.Events = events
	}
	if seed != 0 {
		spec.Seed = seed
	}
	return spec
}

func outName(out, row string) string {
	if out != "" {
		return out
	}
	return row + ".rvpt"
}

func write(path string, enc func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := enc(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
