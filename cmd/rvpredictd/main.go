// Command rvpredictd is the streaming race-detection daemon: a
// long-running service that accepts trace streams over TCP, analyses
// windows online with bounded memory, and keeps every session durable —
// a killed daemon resumes its open sessions bit-identically on restart.
//
// Usage:
//
//	rvpredictd -listen :7464 -state-dir /var/lib/rvpredictd [flags]
//
// Clients are cmd/rvpredict with -daemon, or anything using
// capture.StreamTrace. Each session is named by a client-chosen token;
// the daemon journals per-session progress under -state-dir so
// disconnects, restarts and crashes never lose analysed windows.
//
// Operational posture:
//
//   - Admission control: at most -max-sessions concurrent sessions;
//     excess clients get a typed reject and retry elsewhere, they do not
//     hang in an accept queue.
//   - Backpressure: at most -max-windows windows in SMT analysis at
//     once across all sessions; when saturated, ingest blocks and TCP
//     flow control pushes back on clients.
//   - Graceful degradation: with -degrade-after set, a session blocked
//     that long sheds the SMT tier for the blocked window and reports
//     only sound vector-clock-confirmed races, flagged degraded in
//     provenance. Degradation never invents a race.
//   - Graceful shutdown: SIGTERM/SIGINT stops accepting, drains
//     in-flight sessions, then exits 0. A second signal exits
//     immediately; suspended sessions resume on the next start.
//
// The -http endpoint serves /metrics (Prometheus), /healthz, /readyz
// and /debug/pprof. Exit status is 0 after a clean drain, 2 on usage
// errors, and 7 on an injected crash (test harnesses only).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/introspect"
	"repro/internal/stream"
	"repro/rvpredict"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rvpredictd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen       = fs.String("listen", ":7464", "TCP `addr` for the streaming protocol (\":0\" picks a port)")
		stateDir     = fs.String("state-dir", "", "`dir` for per-session durable state (required)")
		httpAddr     = fs.String("http", "", "serve introspection on `addr`: /metrics, /healthz, /readyz, /debug/pprof")
		window       = fs.Int("window", 10000, "window size in events (0 = single window per session; unbounded memory)")
		solve        = fs.Duration("solve", 60*time.Second, "per-pair solver timeout")
		witness      = fs.Bool("witness", false, "include a witness schedule per race")
		pairPar      = fs.Int("pair-parallel", 0, "solve pairs inside each window with this many workers (deterministic)")
		triage       = fs.String("triage", "on", "vector-clock triage tier: on, off or cp")
		maxSessions  = fs.Int("max-sessions", 16, "admission limit on concurrent sessions")
		maxWindows   = fs.Int("max-windows", 0, "windows in SMT analysis at once across all sessions (0 = GOMAXPROCS)")
		degradeAfter = fs.Duration("degrade-after", 0, "shed the SMT tier for a window after blocking this long on a solver slot (0 = never degrade)")
		idleTimeout  = fs.Duration("idle-timeout", 2*time.Minute, "suspend a session whose client goes silent this long")
		drainWait    = fs.Duration("drain-timeout", 30*time.Second, "bound on the SIGTERM drain before forcing shutdown")
		version      = fs.Bool("version", false, "print the build's module version and VCS revision, then exit")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: rvpredictd -listen addr -state-dir dir [flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		b := rvpredict.BuildInfo()
		fmt.Fprintf(stdout, "rvpredictd %s %s\n", b.Version, b.Revision)
		return 0
	}
	if fs.NArg() != 0 || *stateDir == "" {
		fs.Usage()
		return 2
	}

	logger := log.New(stderr, "rvpredictd: ", log.LstdFlags)

	ws := *window
	if ws == 0 {
		ws = -1 // whole stream as one window
	}
	detect := rvpredict.Options{
		Algorithm:       rvpredict.MaximalCF,
		WindowSize:      ws,
		SolveTimeout:    *solve,
		Witness:         *witness,
		PairParallelism: *pairPar,
	}
	switch strings.ToLower(*triage) {
	case "on":
	case "off":
		detect.NoTriage = true
	case "cp":
		detect.TriageCP = true
	default:
		fmt.Fprintf(stderr, "rvpredictd: unknown -triage mode %q (want on, off or cp)\n", *triage)
		return 2
	}

	var inj *faultinject.Injector
	if spec := os.Getenv("RVPREDICT_FAULTS"); spec != "" {
		in, err := faultinject.ParseScript(spec)
		if err != nil {
			fmt.Fprintln(stderr, "rvpredictd:", err)
			return 2
		}
		inj = in
	}

	d, err := stream.New(stream.Options{
		StateDir:           *stateDir,
		Detect:             detect,
		MaxSessions:        *maxSessions,
		MaxInFlightWindows: *maxWindows,
		DegradeAfter:       *degradeAfter,
		IdleTimeout:        *idleTimeout,
		FaultInjector:      inj,
		Logf:               logger.Printf,
	})
	if err != nil {
		fmt.Fprintln(stderr, "rvpredictd:", err)
		return 2
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(stderr, "rvpredictd:", err)
		return 2
	}
	// The rendezvous lines: with ":0" the kernel picks the ports, so
	// supervisors (and the e2e harness) parse these to find them.
	fmt.Fprintf(stdout, "listening %s\n", ln.Addr())

	var isrv *introspect.Server
	if *httpAddr != "" {
		b := rvpredict.BuildInfo()
		isrv = introspect.New(introspect.Options{
			Collector: d.Collector(),
			Version:   b.Version,
			Revision:  b.Revision,
			Ready:     d.Ready,
		})
		addr, err := isrv.Start(*httpAddr)
		if err != nil {
			fmt.Fprintln(stderr, "rvpredictd:", err)
			ln.Close()
			return 2
		}
		defer isrv.Close()
		fmt.Fprintf(stdout, "http %s\n", addr)
	}
	if f, ok := stdout.(interface{ Sync() error }); ok {
		f.Sync() //nolint:errcheck // best-effort flush of the rendezvous lines
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- d.Serve(ln) }()

	select {
	case err := <-serveErr:
		if err != nil {
			fmt.Fprintln(stderr, "rvpredictd:", err)
			d.Close()
			return 2
		}
		return 0
	case s := <-sig:
		logger.Printf("%v: draining (in-flight sessions finish; new sessions rejected)", s)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		done := make(chan error, 1)
		go func() { done <- d.Drain(ctx) }()
		select {
		case err := <-done:
			if err != nil {
				logger.Printf("drain incomplete: %v; suspended sessions resume on restart", err)
				d.Close()
				return 0
			}
			logger.Printf("drained cleanly")
			d.Close()
			return 0
		case s := <-sig:
			logger.Printf("%v again: immediate shutdown; suspended sessions resume on restart", s)
			d.Close()
			return 0
		}
	}
}
