package main

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/capture"
	"repro/internal/journal"
	"repro/internal/stream"
	"repro/rvpredict"
	"repro/trace"
)

// TestHelperProcess is not a test: it is the daemon re-executed as a
// child process so kill/crash scenarios can genuinely terminate it. The
// arguments after "--" are passed to run verbatim.
func TestHelperProcess(t *testing.T) {
	if os.Getenv("RVPD_HELPER") != "1" {
		return
	}
	args := os.Args
	for i, a := range args {
		if a == "--" {
			args = args[i+1:]
			break
		}
	}
	os.Exit(run(args, os.Stdout, os.Stderr))
}

// daemonChild is one re-executed daemon process with its parsed
// rendezvous addresses.
type daemonChild struct {
	cmd  *exec.Cmd
	addr string // streaming listener
	http string // introspection listener, "" unless -http given
}

// startChild re-execs the test binary as rvpredictd and waits for its
// rendezvous lines.
func startChild(t *testing.T, stateDir string, withHTTP bool) *daemonChild {
	t.Helper()
	args := []string{"-test.run=^TestHelperProcess$", "--",
		"-listen", "127.0.0.1:0", "-state-dir", stateDir, "-window", "8", "-witness"}
	if withHTTP {
		args = append(args, "-http", "127.0.0.1:0")
	}
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "RVPD_HELPER=1")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("re-exec failed to start: %v", err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	child := &daemonChild{cmd: cmd}
	sc := bufio.NewScanner(stdout)
	deadline := time.After(15 * time.Second)
	lines := make(chan string, 8)
	go func() {
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	need := 1
	if withHTTP {
		need = 2
	}
	for need > 0 {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("daemon child exited before announcing its listeners")
			}
			if rest, found := strings.CutPrefix(line, "listening "); found {
				child.addr = rest
				need--
			} else if rest, found := strings.CutPrefix(line, "http "); found {
				child.http = rest
				need--
			}
		case <-deadline:
			t.Fatalf("daemon child never announced its listeners")
		}
	}
	go func() { // keep draining so the child never blocks on stdout
		for range lines {
		}
	}()
	return child
}

// killFixture is an eight-window racy trace: plenty of windows for a
// kill to land between journal appends.
func killFixture() *trace.Trace {
	b := trace.NewBuilder()
	for i := 0; i < 8; i++ {
		l := trace.Loc(100 * (i + 1))
		x := trace.Addr(10 + 4*i)
		y := x + 1
		b.At(l+1).Write(1, x, 1)
		b.At(l+2).ReadV(2, x, 1)
		b.At(l+3).Write(1, y, 2)
		b.At(l+4).Write(2, y, 2)
		b.At(l + 5).Branch(1)
		b.At(l + 6).Branch(2)
		b.At(l + 5).Branch(1)
		b.At(l + 6).Branch(2)
	}
	return b.Trace()
}

func normalize(rep *rvpredict.Report) *rvpredict.Report {
	rep.Elapsed = 0
	for i := range rep.Races {
		rep.Races[i].Provenance.Replayed = false
	}
	return rep
}

// TestDaemonSIGKILLResume is the crash-recovery acceptance test: the
// daemon is killed with SIGKILL mid-session (windows journaled, report
// not yet written), a fresh daemon over the same state dir resumes the
// session from its durable ingest log and journal, and the final report
// is bit-identical to an uninterrupted batch run — with the replayed
// windows visible in both provenance and the /metrics counter.
func TestDaemonSIGKILLResume(t *testing.T) {
	tr := killFixture()
	stateDir := t.TempDir()
	opt := rvpredict.Options{WindowSize: 8, Witness: true, SolveTimeout: 60 * time.Second}
	want, err := rvpredict.Run(context.Background(), tr, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: stream every event (no End) into the first daemon and
	// wait until at least two windows are durably journaled.
	child1 := startChild(t, stateDir, false)
	conn, err := net.Dial("tcp", child1.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	cl := stream.NewClient(conn)
	if _, err := cl.Handshake("kill-me"); err != nil {
		t.Fatal(err)
	}
	if err := cl.SendTrace(tr, 0, 4); err != nil {
		t.Fatal(err)
	}
	jp := filepath.Join(stateDir, "kill-me.journal")
	journaled := 0
	for deadline := time.Now().Add(15 * time.Second); ; {
		if _, info, err := journal.Inspect(jp); err == nil {
			journaled = len(info.Outcomes)
		}
		if journaled >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d windows journaled before the deadline", journaled)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := child1.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	child1.cmd.Wait()
	conn.Close()

	// Phase 2: a fresh daemon over the same state dir; the client
	// reconnects with the same token, resumes, and completes.
	child2 := startChild(t, stateDir, true)
	rep, err := capture.StreamTrace(context.Background(), tr, capture.StreamOptions{
		Addr:        child2.addr,
		Token:       "kill-me",
		BatchEvents: 4,
		BackoffMin:  10 * time.Millisecond,
		MaxAttempts: 10,
	})
	if err != nil {
		t.Fatalf("resuming stream: %v", err)
	}
	var replayedRaces int
	for _, r := range rep.Races {
		if r.Provenance.Replayed {
			replayedRaces++
		}
	}
	if replayedRaces == 0 {
		t.Errorf("no replayed races in the resumed report despite %d journaled windows", journaled)
	}
	if !reflect.DeepEqual(normalize(rep), normalize(&want)) {
		t.Errorf("resumed report differs from the uninterrupted run:\n got %+v\nwant %+v", rep, want)
	}

	// The restarted daemon's metrics must witness the replay.
	if v := scrapeMetric(t, child2.http, "rvpredict_journal_windows_replayed_total"); v < 2 {
		t.Errorf("windows_replayed = %v, want >= 2", v)
	}
	if v := scrapeMetric(t, child2.http, "rvpredict_sessions_active"); v != 0 {
		t.Errorf("sessions_active = %v after completion, want 0", v)
	}
	for _, probe := range []struct{ path, want string }{
		{"/healthz", "200"},
		{"/readyz", "200"},
	} {
		resp, err := http.Get("http://" + child2.http + probe.path)
		if err != nil {
			t.Fatalf("GET %s: %v", probe.path, err)
		}
		resp.Body.Close()
		if got := strconv.Itoa(resp.StatusCode); got != probe.want {
			t.Errorf("GET %s = %s, want %s", probe.path, got, probe.want)
		}
	}

	// Phase 3: SIGTERM drains and exits 0; /readyz flips to 503 during
	// the drain window (checked best-effort — the drain may win the
	// race), and the completed session's report file survives.
	if err := child2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := child2.cmd.Wait(); err != nil {
		t.Errorf("SIGTERM drain exit: %v, want success", err)
	}
	if _, err := os.Stat(filepath.Join(stateDir, "kill-me.report.json")); err != nil {
		t.Errorf("completed session's report artifact missing: %v", err)
	}
	for _, leftover := range []string{"kill-me.ingest", "kill-me.journal"} {
		if _, err := os.Stat(filepath.Join(stateDir, leftover)); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("completed session left %s behind (stat err: %v)", leftover, err)
		}
	}
}

func scrapeMetric(t *testing.T, addr, name string) float64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` ([0-9eE.+-]+)$`)
	m := re.FindStringSubmatch(string(body))
	if m == nil {
		t.Fatalf("metric %s missing from scrape:\n%s", name, body)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestUsageErrors pins the exit-2 contract.
func TestUsageErrors(t *testing.T) {
	for name, args := range map[string][]string{
		"no-state-dir": {"-listen", "127.0.0.1:0"},
		"positional":   {"-state-dir", os.TempDir(), "extra"},
		"bad-triage":   {"-state-dir", os.TempDir(), "-triage", "maybe"},
		"bad-flag":     {"-no-such-flag"},
	} {
		t.Run(name, func(t *testing.T) {
			var out, errb strings.Builder
			if got := run(args, &out, &errb); got != 2 {
				t.Errorf("run(%v) = %d, want 2 (stderr: %s)", args, got, errb.String())
			}
		})
	}
}

// TestVersionFlag: -version prints build info and exits 0.
func TestVersionFlag(t *testing.T) {
	var out, errb strings.Builder
	if got := run([]string{"-version"}, &out, &errb); got != 0 {
		t.Fatalf("run(-version) = %d (stderr: %s)", got, errb.String())
	}
	if !strings.HasPrefix(out.String(), "rvpredictd ") {
		t.Errorf("version output = %q", out.String())
	}
	_ = fmt.Sprintf // keep fmt imported if assertions change
}
