package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/tracefile"
	"repro/rvpredict"
	"repro/trace"
)

// writeTrace encodes tr into a temp .rvpt file and returns its path.
func writeTrace(t *testing.T, tr *trace.Trace) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.rvpt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := tracefile.Encode(f, tr); err != nil {
		t.Fatal(err)
	}
	return path
}

// cleanTrace is a two-thread trace with no races (join-ordered accesses).
func cleanTrace() *trace.Trace {
	b := trace.NewBuilder()
	b.Write(1, 1, 1)
	b.Fork(1, 2)
	b.Write(2, 1, 2)
	b.Join(1, 2)
	b.Read(1, 1)
	return b.Trace()
}

func TestExitCodes(t *testing.T) {
	racy := writeTrace(t, fixtures.Figure1())
	clean := writeTrace(t, cleanTrace())
	var out, errb bytes.Buffer

	cases := []struct {
		name string
		args []string
		want int
	}{
		{"races found", []string{racy}, 1},
		{"clean trace", []string{clean}, 0},
		{"clean json", []string{"-json", clean}, 0},
		{"racy json stats", []string{"-json", "-stats", racy}, 1},
		{"no deadlocks", []string{"-deadlock", clean}, 0},
		{"no violations", []string{"-atomicity", clean}, 0},
		{"dump", []string{"-dump", racy}, 0},
		{"missing file", []string{filepath.Join(t.TempDir(), "absent.rvpt")}, 2},
		{"no args", nil, 2},
		{"bad flag", []string{"-definitely-not-a-flag", racy}, 2},
		{"bad algo", []string{"-algo", "nope", racy}, 2},
		{"hb clean on fig1 races", []string{"-algo", "hb", racy}, 0},
	}
	for _, tc := range cases {
		out.Reset()
		errb.Reset()
		if got := run(tc.args, &out, &errb); got != tc.want {
			t.Errorf("%s: exit = %d, want %d (stderr: %s)", tc.name, got, tc.want, errb.String())
		}
	}
}

// TestJSONOutputParses checks -json emits one decodable report with
// telemetry attached.
func TestJSONOutputParses(t *testing.T) {
	racy := writeTrace(t, fixtures.Figure1())
	var out, errb bytes.Buffer
	if got := run([]string{"-json", racy}, &out, &errb); got != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", got, errb.String())
	}
	var rep rvpredict.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out.String())
	}
	if rep.Telemetry == nil {
		t.Error("-json output missing telemetry")
	}
	if len(rep.Races) != 1 {
		t.Errorf("races = %d, want 1", len(rep.Races))
	}
}

// TestStatsOutput checks -stats prints the counter block after the report.
func TestStatsOutput(t *testing.T) {
	racy := writeTrace(t, fixtures.Figure1())
	var out, errb bytes.Buffer
	if got := run([]string{"-stats", racy}, &out, &errb); got != 1 {
		t.Fatalf("exit = %d, want 1", got)
	}
	for _, want := range []string{"--- stats ---", "phases:", "candidates:", "queries:", "idl:", "encode:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-stats output missing %q:\n%s", want, out.String())
		}
	}
}

// TestProgressOutput checks -progress writes window lines to stderr only.
func TestProgressOutput(t *testing.T) {
	racy := writeTrace(t, fixtures.Figure1())
	var out, errb bytes.Buffer
	if got := run([]string{"-progress", racy}, &out, &errb); got != 1 {
		t.Fatalf("exit = %d, want 1", got)
	}
	if !strings.Contains(errb.String(), "window 0") {
		t.Errorf("no progress lines on stderr:\n%s", errb.String())
	}
	if strings.Contains(out.String(), "window 0:") {
		t.Error("progress lines leaked to stdout")
	}
}
