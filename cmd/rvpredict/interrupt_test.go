package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/fixtures"
)

// TestInterruptedRunExitsThree drives runCtx with an already-cancelled
// context — the same state a SIGINT puts the real context in — and
// checks the contract: exit status 3 and, with -json, a parseable partial
// report carrying "interrupted": true.
func TestInterruptedRunExitsThree(t *testing.T) {
	path := writeTrace(t, fixtures.Figure1())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	var out, errb bytes.Buffer
	code := runCtx(ctx, []string{"-json", path}, &out, &errb)
	if code != exitInterrupted {
		t.Fatalf("exit = %d, want %d; stderr: %s", code, exitInterrupted, errb.String())
	}
	var rep map[string]any
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("interrupted -json output is not valid JSON: %v\n%s", err, out.String())
	}
	if rep["interrupted"] != true {
		t.Fatalf(`report "interrupted" = %v, want true`, rep["interrupted"])
	}
}

// TestInterruptedTextRun checks the human-readable path: partial results
// are flushed, a note lands on stderr, and the exit code is still 3.
func TestInterruptedTextRun(t *testing.T) {
	path := writeTrace(t, fixtures.Figure1())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	var out, errb bytes.Buffer
	if code := runCtx(ctx, []string{path}, &out, &errb); code != exitInterrupted {
		t.Fatalf("exit = %d, want %d", code, exitInterrupted)
	}
	if !strings.Contains(errb.String(), "interrupted") {
		t.Errorf("stderr %q lacks the interrupted note", errb.String())
	}
	if !strings.Contains(out.String(), "race(s)") {
		t.Errorf("stdout %q: the partial report must still be printed", out.String())
	}
}

// TestInterruptedDeadlockAndAtomicityRuns covers the other two analysis
// modes' interrupt paths.
func TestInterruptedDeadlockAndAtomicityRuns(t *testing.T) {
	path := writeTrace(t, fixtures.Figure1())
	for _, mode := range []string{"-deadlock", "-atomicity"} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var out, errb bytes.Buffer
		if code := runCtx(ctx, []string{mode, path}, &out, &errb); code != exitInterrupted {
			t.Errorf("%s: exit = %d, want %d", mode, code, exitInterrupted)
		}
	}
}

// TestUninterruptedRunUnchanged pins that a live context leaves the
// normal exit codes alone.
func TestUninterruptedRunUnchanged(t *testing.T) {
	path := writeTrace(t, fixtures.Figure1())
	var out, errb bytes.Buffer
	if code := runCtx(context.Background(), []string{path}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d on a racy trace, want 1", code)
	}
}
