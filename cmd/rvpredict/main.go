// Command rvpredict runs predictive race detection on a recorded trace
// file (see cmd/tracegen and cmd/minirun for producers).
//
// Usage:
//
//	rvpredict [flags] trace.rvpt
//
// The default algorithm is the paper's maximal control-flow-aware
// technique; -algo selects a baseline for comparison.
//
// Exit status is 1 when races (or deadlocks / atomicity violations) are
// found, 0 when the trace is clean, 2 on usage or decode errors, and 3
// when the run was interrupted (SIGINT/SIGTERM) — scriptable like grep.
// An interrupted run still flushes whatever it found; with -json the
// partial report carries "interrupted": true.
//
// Long runs can be made crash-safe with -journal: every completed
// analysis window is checkpointed to the given file, and a subsequent
// run with -journal and -resume replays the checkpointed windows instead
// of re-solving them, producing the same report as an uninterrupted run.
// -out writes the report to a file atomically (temp file + fsync +
// rename) instead of stdout, so a killed run never leaves a half-written
// report behind.
//
// Two trace formats are accepted, distinguished by their magic: the
// legacy in-memory format (.rvpt) and the chunked columnar format
// (.rvc2, produced by -convert or tracegen -format chunked). Chunked
// traces are mmapped and analysed out of core — windows are decoded one
// chunk at a time, so a multi-GB trace analyses in flat memory.
//
// Chunked traces also enable multi-process sharding: N processes each
// run with -shards N -shard-id I -journal shard-I.journal (every
// process analyses the windows whose index ≡ I mod N), and a final
//
//	rvpredict -merge shard-0.journal,...,shard-N-1.journal trace.rvc2
//
// combines the shard journals into one report identical to a
// single-process run.
//
// The fault-tolerant flavour of the same split is the fleet: one
// process runs -coordinate addr -journal coord.journal and any number
// of processes run -worker addr against the same trace file. The
// coordinator leases window shards to workers, fsyncs every returned
// outcome to its journal before acknowledging it, reassigns the leases
// of crashed or stalled workers (speculatively duplicating stragglers),
// analyses any windows the fleet never covered locally, and renders the
// same report a single-process run would — even if the coordinator
// itself is killed and restarted over the same journal.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/capture"
	"repro/internal/faultinject"
	"repro/internal/fleet"
	"repro/internal/journal"
	"repro/internal/race"
	"repro/internal/tracefile"
	"repro/internal/tracev2"
	"repro/rvpredict"
	"repro/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// exitInterrupted is the exit status of a run cut short by SIGINT or
// SIGTERM after flushing its partial report.
const exitInterrupted = 3

// run wires OS signals to the detection context: the first SIGINT or
// SIGTERM cancels it, the detectors wind down cooperatively (mid-solve),
// and the partial report is flushed before exiting with status 3. A
// second signal kills the process the default way.
func run(args []string, stdout, stderr io.Writer) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runCtx(ctx, args, stdout, stderr)
}

func runCtx(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	// Everything the command writes to stderr — progress lines, the
	// introspection banner, status notes, errors — goes through one
	// serialising writer, so concurrent callbacks (parallel windows, the
	// HTTP server goroutine) can never interleave mid-line.
	stderr = &syncWriter{w: stderr}
	fs := flag.NewFlagSet("rvpredict", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		algoName   = fs.String("algo", "rv", "algorithm: rv, said, cp, hb or qc")
		window     = fs.Int("window", 10000, "window size in events (0 = whole trace)")
		timeout    = fs.Duration("timeout", 60*time.Second, "per-pair solver timeout")
		parallel   = fs.Int("parallel", 0, "analyse windows with this many workers (rv only)")
		pairPar    = fs.Int("pair-parallel", 0, "solve pairs inside each window with this many workers (rv only; deterministic)")
		triage     = fs.String("triage", "on", "triage ladder rung: on, off, shb, wcp, syncp or cp (rv only; results identical at every rung)")
		witness    = fs.Bool("witness", false, "print a witness schedule per race")
		dump       = fs.Bool("dump", false, "dump the trace instead of analysing it")
		deadlocks  = fs.Bool("deadlock", false, "predict lock-inversion deadlocks instead of races")
		atomicity  = fs.Bool("atomicity", false, "predict atomicity violations instead of races")
		stats      = fs.Bool("stats", false, "print pipeline and solver statistics after the report")
		jsonOut    = fs.Bool("json", false, "emit the full report (with telemetry) as JSON on stdout")
		progress   = fs.Bool("progress", false, "trace per-window progress on stderr while analysing")
		firstPass  = fs.Duration("first-pass", 0, "cheap first-pass per-pair timeout; timed-out pairs are retried with escalating budgets (rv only)")
		budget     = fs.Duration("budget", 0, "global wall-clock budget for the whole run (0 = unbounded; rv only)")
		journalTo  = fs.String("journal", "", "checkpoint completed windows to `file` for crash-safe resume (rv only)")
		resume     = fs.Bool("resume", false, "replay windows already checkpointed in the -journal file instead of re-analysing them")
		outPath    = fs.String("out", "", "write the report to `file` atomically (temp file + rename) instead of stdout")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to `file`")
		memprofile = fs.String("memprofile", "", "write a heap profile to `file` on exit")
		httpAddr   = fs.String("http", "", "serve live introspection on `addr` while analysing: /metrics, /progress, /races, /debug/pprof (\":0\" picks a port, printed on stderr)")
		traceOut   = fs.String("trace-out", "", "write the run's span timeline to `file` as Chrome trace-event JSON (load in chrome://tracing or Perfetto)")
		daemonAddr = fs.String("daemon", "", "stream the trace to the rvpredictd daemon at `addr` instead of analysing locally (requires -token; the daemon's flags govern analysis)")
		token      = fs.String("token", "", "session `name` for -daemon: reusing a token resumes its durable session after a disconnect or daemon restart")
		convertTo  = fs.String("convert", "", "convert the legacy trace to the chunked columnar format at `file`, then exit")
		chunkSize  = fs.Int("chunk-size", tracev2.DefaultChunkSize, "events per chunk for -convert")
		shards     = fs.Int("shards", 0, "shard the analysis across this many cooperating processes: this process analyses windows whose index ≡ -shard-id mod N (rv only; >1 requires -journal)")
		shardID    = fs.Int("shard-id", 0, "this process's shard index in [0, -shards)")
		mergeList  = fs.String("merge", "", "merge the comma-separated shard journal `files` into one report over the given trace, instead of analysing")
		coordAddr  = fs.String("coordinate", "", "run a fleet coordinator on `addr`: lease window shards to -worker processes, journal their results (requires -journal) and merge the final report")
		workerAddr = fs.String("worker", "", "run as a fleet worker against the coordinator at `addr`: lease shards, analyse their windows over the same trace and stream the outcomes back")
		fleetN     = fs.Int("fleet-shards", 0, "lease partitions for -coordinate (default 4); each lease covers the windows whose index ≡ shard mod N")
		leaseTTL   = fs.Duration("lease-ttl", 0, "-coordinate: how long a worker's lease survives without a heartbeat before its shard is reassigned (default 10s)")
		specAfter  = fs.Duration("speculate-after", 0, "-coordinate: lease age past which an idle worker is granted a speculative duplicate of a straggling shard (default -lease-ttl)")
		idleGrace  = fs.Duration("idle-grace", 0, "-coordinate: how long an empty fleet is tolerated before degrading to local analysis of the uncovered windows (default 2s)")
		workerName = fs.String("worker-name", "", "-worker: `name` reported to the coordinator's logs (default host:pid)")
		version    = fs.Bool("version", false, "print the build's module version and VCS revision, then exit")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: rvpredict [flags] trace.rvpt")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		b := rvpredict.BuildInfo()
		fmt.Fprintf(stdout, "rvpredict %s %s\n", b.Version, b.Revision)
		return 0
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "rvpredict:", err)
		return 2
	}
	defer f.Close()
	format, err := tracefile.Sniff(f)
	if err != nil {
		fmt.Fprintln(stderr, "rvpredict:", err)
		return 2
	}

	// -convert and -dump stream the file record by record — neither mode
	// materialises the trace, so both work on traces larger than memory.
	if *convertTo != "" {
		if format != tracefile.FormatLegacy {
			fmt.Fprintln(stderr, "rvpredict: -convert takes a legacy trace; the input is already chunked")
			return 2
		}
		if err := convertTrace(f, *convertTo, *chunkSize); err != nil {
			fmt.Fprintln(stderr, "rvpredict:", err)
			return 2
		}
		fmt.Fprintf(stderr, "rvpredict: wrote chunked trace %s\n", *convertTo)
		return 0
	}
	if *dump {
		if format == tracefile.FormatChunked {
			rd, err := tracev2.Open(fs.Arg(0))
			if err != nil {
				fmt.Fprintln(stderr, "rvpredict:", err)
				return 2
			}
			defer rd.Close()
			err = tracev2.Dump(stdout, rd)
			if err != nil {
				fmt.Fprintln(stderr, "rvpredict:", err)
				return 2
			}
			return 0
		}
		if err := tracefile.DumpStream(stdout, f); err != nil {
			fmt.Fprintln(stderr, "rvpredict:", err)
			return 2
		}
		return 0
	}

	// A chunked trace is mmapped and analysed out of core; a legacy trace
	// is decoded whole, as before. Modes that need the materialised trace
	// (baselines handle this internally; deadlock/atomicity/daemon below)
	// read the chunked trace fully.
	var tr *trace.Trace
	var rd *tracev2.Reader
	if format == tracefile.FormatChunked {
		rd, err = tracev2.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(stderr, "rvpredict:", err)
			return 2
		}
		defer rd.Close()
	} else {
		tr, err = tracefile.Decode(f)
		if err != nil {
			fmt.Fprintln(stderr, "rvpredict:", err)
			return 2
		}
	}
	// materialise returns the whole trace, reading a chunked file once on
	// first use — only the modes that genuinely need every event in
	// memory call it.
	materialise := func() (*trace.Trace, error) {
		if tr == nil {
			var err error
			tr, err = rd.ReadAll()
			if err != nil {
				return nil, err
			}
		}
		return tr, nil
	}
	// eventAt/locName render witnesses and reports without assuming a
	// materialised trace.
	eventAt := func(i int) trace.Event {
		if tr != nil {
			return tr.Event(i)
		}
		e, _ := rd.Event(i)
		return e
	}
	locName := func(l trace.Loc) string {
		if tr != nil {
			return tr.LocName(l)
		}
		return rd.LocName(l)
	}

	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, "rvpredict:", err)
			return 2
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			fmt.Fprintln(stderr, "rvpredict:", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			pf, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(stderr, "rvpredict:", err)
				return
			}
			defer pf.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(pf); err != nil {
				fmt.Fprintln(stderr, "rvpredict:", err)
			}
		}()
	}

	ws := *window
	if ws == 0 {
		ws = -1 // whole trace
	}
	opt := rvpredict.Options{
		WindowSize:       ws,
		SolveTimeout:     *timeout,
		FirstPassTimeout: *firstPass,
		GlobalBudget:     *budget,
		Parallelism:      *parallel,
		PairParallelism:  *pairPar,
		Witness:          *witness,
		Telemetry:        *stats || *jsonOut,
		Journal:          *journalTo,
		Resume:           *resume,
	}
	// RVPREDICT_FAULTS carries a deterministic fault script (see
	// faultinject.ParseScript) into the pipeline — the hook the re-exec
	// crash-recovery tests use to kill this process at precise points.
	var inj *faultinject.Injector
	if spec := os.Getenv("RVPREDICT_FAULTS"); spec != "" {
		in, err := faultinject.ParseScript(spec)
		if err != nil {
			fmt.Fprintln(stderr, "rvpredict:", err)
			return 2
		}
		inj = in
		opt.FaultInjector = inj
	}
	switch mode := strings.ToLower(*triage); mode {
	case "on":
		// default: the full witness-backed ladder (SHB → WCP → SyncP)
	case "off":
		opt.NoTriage = true
	case "shb", "wcp", "syncp", "cp":
		opt.TriageLevel = mode
	default:
		fmt.Fprintf(stderr, "rvpredict: unknown -triage mode %q (want on, off, shb, wcp, syncp or cp)\n", *triage)
		return 2
	}
	if *progress {
		opt.Tracer = &progressTracer{w: stderr, start: time.Now()}
	}
	if *httpAddr != "" {
		opt.DebugAddr = *httpAddr
		opt.OnDebugAddr = func(addr string) {
			fmt.Fprintf(stderr, "rvpredict: introspection on http://%s/\n", addr)
		}
	}
	var spans *rvpredict.SpanRecorder
	if *traceOut != "" {
		spans = rvpredict.NewSpanRecorder(0)
		opt.Spans = spans
	}

	// deliver renders one report to -out (atomically) or stdout; every
	// report path below goes through it so a killed run can never leave a
	// half-written report file.
	deliver := func(render func(w io.Writer) error) error {
		if *outPath == "" && inj == nil {
			return render(stdout)
		}
		var buf bytes.Buffer
		if err := render(&buf); err != nil {
			return err
		}
		if *outPath == "" {
			_, err := stdout.Write(buf.Bytes())
			return err
		}
		return journal.WriteFileAtomic(*outPath, buf.Bytes(), inj)
	}

	if *deadlocks || *atomicity {
		if *journalTo != "" || *resume {
			fmt.Fprintln(stderr, "rvpredict: -journal/-resume apply to race detection only")
			return 2
		}
		if *httpAddr != "" || *traceOut != "" {
			fmt.Fprintln(stderr, "rvpredict: -http/-trace-out apply to race detection only")
			return 2
		}
		if *shards != 0 || *mergeList != "" {
			fmt.Fprintln(stderr, "rvpredict: -shards/-merge apply to race detection only")
			return 2
		}
	}
	if *mergeList != "" {
		if *shards != 0 || *journalTo != "" || *resume || *daemonAddr != "" {
			fmt.Fprintln(stderr, "rvpredict: -merge combines finished shard journals; it conflicts with -shards/-journal/-resume/-daemon")
			return 2
		}
		if strings.ToLower(*algoName) != "rv" {
			fmt.Fprintln(stderr, "rvpredict: -merge merges rv shard journals; -algo applies to direct analysis")
			return 2
		}
	}
	if *shards != 0 && *daemonAddr != "" {
		fmt.Fprintln(stderr, "rvpredict: -shards applies to local analysis only")
		return 2
	}
	if *coordAddr != "" || *workerAddr != "" {
		switch {
		case *coordAddr != "" && *workerAddr != "":
			fmt.Fprintln(stderr, "rvpredict: -coordinate and -worker are different roles; pick one per process")
			return 2
		case *daemonAddr != "" || *mergeList != "" || *shards != 0:
			fmt.Fprintln(stderr, "rvpredict: -coordinate/-worker conflict with -daemon/-merge/-shards")
			return 2
		case *deadlocks || *atomicity:
			fmt.Fprintln(stderr, "rvpredict: the fleet runs race detection only")
			return 2
		case strings.ToLower(*algoName) != "rv":
			fmt.Fprintln(stderr, "rvpredict: the fleet runs the rv algorithm; -algo applies to direct analysis")
			return 2
		case *coordAddr != "" && *journalTo == "":
			fmt.Fprintln(stderr, "rvpredict: -coordinate requires -journal (the coordinator's durable result journal)")
			return 2
		case *coordAddr != "" && *resume:
			fmt.Fprintln(stderr, "rvpredict: -coordinate resumes from an existing -journal automatically; drop -resume")
			return 2
		case *workerAddr != "" && (*journalTo != "" || *resume || *outPath != ""):
			fmt.Fprintln(stderr, "rvpredict: -journal/-resume/-out are owned by the coordinator in -worker mode")
			return 2
		}
	}

	if *daemonAddr != "" {
		switch {
		case *token == "":
			fmt.Fprintln(stderr, "rvpredict: -daemon requires -token (the session's resumption key)")
			return 2
		case *deadlocks || *atomicity:
			fmt.Fprintln(stderr, "rvpredict: -daemon streams race detection only")
			return 2
		case *journalTo != "" || *resume || *httpAddr != "" || *traceOut != "" || *stats:
			fmt.Fprintln(stderr, "rvpredict: -journal/-resume/-http/-trace-out/-stats are owned by the daemon in -daemon mode")
			return 2
		case strings.ToLower(*algoName) != "rv":
			fmt.Fprintln(stderr, "rvpredict: the daemon runs the rv algorithm; -algo applies to local analysis")
			return 2
		}
		mtr, err := materialise()
		if err != nil {
			fmt.Fprintln(stderr, "rvpredict:", err)
			return 2
		}
		rep, err := capture.StreamTrace(ctx, mtr, capture.StreamOptions{
			Addr:  *daemonAddr,
			Token: *token,
			OnRetry: func(attempt int, err error) {
				fmt.Fprintf(stderr, "rvpredict: stream attempt %d failed (%v); reconnecting\n", attempt, err)
			},
		})
		if err != nil {
			if ctx.Err() != nil {
				fmt.Fprintln(stderr, "rvpredict: interrupted")
				return exitInterrupted
			}
			fmt.Fprintln(stderr, "rvpredict:", err)
			return 2
		}
		if err := deliver(func(w io.Writer) error {
			if *jsonOut {
				return emitJSON(w, rep)
			}
			renderRaceReport(w, rep, eventAt, locName, *witness)
			return nil
		}); err != nil {
			fmt.Fprintln(stderr, "rvpredict:", err)
			return 2
		}
		return foundExit(len(rep.Races))
	}

	if *deadlocks {
		mtr, err := materialise()
		if err != nil {
			fmt.Fprintln(stderr, "rvpredict:", err)
			return 2
		}
		rep := rvpredict.DetectDeadlocksContext(ctx, mtr, opt)
		err = deliver(func(w io.Writer) error {
			if *jsonOut {
				return emitJSON(w, rep)
			}
			fmt.Fprintf(w, "deadlocks: %d (of %d candidate inversions) in %v\n",
				len(rep.Deadlocks), rep.Candidates, rep.Elapsed.Round(time.Millisecond))
			for i, d := range rep.Deadlocks {
				fmt.Fprintf(w, "  #%d %s\n", i+1, d.Description)
				if *witness && d.Witness != nil {
					fmt.Fprintf(w, "     witness prefix:")
					for _, idx := range d.Witness {
						fmt.Fprintf(w, " %d", idx)
					}
					fmt.Fprintln(w)
				}
			}
			if *stats {
				printTelemetry(w, rep.Telemetry)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(stderr, "rvpredict:", err)
			return 2
		}
		if rep.Interrupted {
			fmt.Fprintln(stderr, "rvpredict: interrupted; partial results above")
			return exitInterrupted
		}
		return foundExit(len(rep.Deadlocks))
	}

	if *atomicity {
		mtr, err := materialise()
		if err != nil {
			fmt.Fprintln(stderr, "rvpredict:", err)
			return 2
		}
		rep := rvpredict.DetectAtomicityViolationsContext(ctx, mtr, opt)
		err = deliver(func(w io.Writer) error {
			if *jsonOut {
				return emitJSON(w, rep)
			}
			fmt.Fprintf(w, "atomicity violations: %d (of %d candidates) in %v\n",
				len(rep.Violations), rep.Candidates, rep.Elapsed.Round(time.Millisecond))
			for i, v := range rep.Violations {
				fmt.Fprintf(w, "  #%d %s\n", i+1, v.Description)
			}
			if *stats {
				printTelemetry(w, rep.Telemetry)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(stderr, "rvpredict:", err)
			return 2
		}
		if rep.Interrupted {
			fmt.Fprintln(stderr, "rvpredict: interrupted; partial results above")
			return exitInterrupted
		}
		return foundExit(len(rep.Violations))
	}

	switch strings.ToLower(*algoName) {
	case "rv":
		opt.Algorithm = rvpredict.MaximalCF
	case "said":
		opt.Algorithm = rvpredict.SaidEtAl
	case "cp":
		opt.Algorithm = rvpredict.CausallyPrecedes
	case "hb":
		opt.Algorithm = rvpredict.HappensBefore
	case "qc":
		opt.Algorithm = rvpredict.QuickCheck
	default:
		fmt.Fprintf(stderr, "rvpredict: unknown algorithm %q\n", *algoName)
		return 2
	}

	// Fleet modes: both sides analyse through a trace reader, so the
	// handshake fingerprint (content hash + result-affecting options) is
	// comparable across processes whatever the input format.
	if *coordAddr != "" || *workerAddr != "" {
		if rd != nil {
			opt.TraceReader = rd
		} else if opt.TraceReader, err = tracev2.FromTrace(tr); err != nil {
			fmt.Fprintln(stderr, "rvpredict:", err)
			return 2
		}
	}
	logf := func(format string, fargs ...any) {
		fmt.Fprintf(stderr, "rvpredict: "+format+"\n", fargs...)
	}
	if *workerAddr != "" {
		name := *workerName
		if name == "" {
			host, _ := os.Hostname()
			name = fmt.Sprintf("%s:%d", host, os.Getpid())
		}
		err := fleet.RunWorker(ctx, fleet.WorkerOptions{
			Addr:          *workerAddr,
			Detect:        opt,
			Name:          name,
			FaultInjector: inj,
			AllowCrash:    true,
			Logf:          logf,
		})
		if err != nil {
			if ctx.Err() != nil {
				fmt.Fprintln(stderr, "rvpredict: interrupted")
				return exitInterrupted
			}
			fmt.Fprintln(stderr, "rvpredict:", err)
			return 2
		}
		fmt.Fprintf(stderr, "rvpredict: worker %s done\n", name)
		return 0
	}

	var rep rvpredict.Report
	if *coordAddr != "" {
		jpath := *journalTo
		opt.Journal = "" // the journal belongs to the coordinator, not the detector
		ln, lerr := net.Listen("tcp", *coordAddr)
		if lerr != nil {
			fmt.Fprintln(stderr, "rvpredict:", lerr)
			return 2
		}
		coord, cerr := fleet.NewCoordinator(fleet.CoordinatorOptions{
			Detect:         opt,
			Journal:        jpath,
			Shards:         *fleetN,
			LeaseTTL:       *leaseTTL,
			SpeculateAfter: *specAfter,
			IdleGrace:      *idleGrace,
			FaultInjector:  inj,
			Logf:           logf,
		})
		if cerr != nil {
			ln.Close()
			fmt.Fprintln(stderr, "rvpredict:", cerr)
			return 2
		}
		fmt.Fprintf(stderr, "rvpredict: coordinating on %s\n", ln.Addr())
		rep, err = coord.Run(ctx, ln)
		if err != nil {
			if ctx.Err() != nil {
				fmt.Fprintln(stderr, "rvpredict: interrupted")
				return exitInterrupted
			}
			fmt.Fprintln(stderr, "rvpredict:", err)
			return 2
		}
	} else if *mergeList != "" {
		if rd != nil {
			opt.TraceReader = rd
		} else if opt.TraceReader, err = tracev2.FromTrace(tr); err != nil {
			fmt.Fprintln(stderr, "rvpredict:", err)
			return 2
		}
		rep, err = rvpredict.MergeShards(ctx, opt, strings.Split(*mergeList, ","))
	} else {
		opt.Shards, opt.ShardID = *shards, *shardID
		if rd != nil {
			// Chunked input: analyse out of core. Baselines materialise
			// internally via the reader.
			opt.TraceReader = rd
			rep, err = rvpredict.Run(ctx, nil, opt)
		} else {
			rep, err = rvpredict.Run(ctx, tr, opt)
		}
	}
	if err != nil {
		fmt.Fprintln(stderr, "rvpredict:", err)
		return 2
	}
	err = deliver(func(w io.Writer) error {
		if *jsonOut {
			return emitJSON(w, rep)
		}
		renderRaceReport(w, &rep, eventAt, locName, *witness)
		if *stats {
			printTelemetry(w, rep.Telemetry)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(stderr, "rvpredict:", err)
		return 2
	}
	if spans != nil {
		if err := writeTraceEvents(*traceOut, spans, inj); err != nil {
			fmt.Fprintln(stderr, "rvpredict:", err)
			return 2
		}
		if n := spans.Dropped(); n > 0 {
			fmt.Fprintf(stderr, "rvpredict: span ring wrapped; %d oldest spans dropped from %s\n", n, *traceOut)
		}
	}
	if rep.Interrupted {
		fmt.Fprintln(stderr, "rvpredict: interrupted; partial results above")
		return exitInterrupted
	}
	return foundExit(len(rep.Races))
}

// convertTrace streams a legacy trace file into the chunked columnar
// format — record by record, so traces larger than memory convert in
// bounded space. The output is fsynced before the function reports
// success.
func convertTrace(src io.Reader, dst string, chunkSize int) error {
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := tracev2.Convert(out, src, chunkSize); err != nil {
		out.Close()
		os.Remove(dst)
		return err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// writeTraceEvents renders the recorded span timeline as Chrome
// trace-event JSON and writes it with the same atomic discipline as
// -out: a crash mid-write never leaves a half-written timeline.
func writeTraceEvents(path string, spans *rvpredict.SpanRecorder, inj *faultinject.Injector) error {
	var buf bytes.Buffer
	if err := spans.WriteChromeTrace(&buf); err != nil {
		return err
	}
	return journal.WriteFileAtomic(path, buf.Bytes(), inj)
}

// syncWriter serialises whole writes to one underlying writer. fmt's
// Fprintf issues a single Write per call, so each formatted line passes
// through atomically.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// renderRaceReport prints the human-readable race report — shared by
// local analysis, out-of-core chunked analysis and -daemon streaming,
// so every mode is diffable. Events and location names come through
// accessors so a chunked trace never needs materialising just to
// render.
func renderRaceReport(w io.Writer, rep *rvpredict.Report, eventAt func(int) trace.Event, locName func(trace.Loc) string, witness bool) {
	s := rep.Stats
	fmt.Fprintf(w, "trace: %d events, %d threads, %d r/w, %d sync, %d branch\n",
		s.Events, s.Threads, s.Accesses, s.Syncs, s.Branches)
	fmt.Fprintf(w, "%s: %d race(s) in %v (%d pairs checked, %d windows, %d timeouts)\n",
		rep.Algorithm, len(rep.Races), rep.Elapsed.Round(time.Millisecond),
		rep.PairsChecked, rep.Windows, rep.SolverTimeouts)
	for i, r := range rep.Races {
		fmt.Fprintf(w, "  #%d %s\n", i+1, r.Description)
		if witness && r.Witness != nil {
			fmt.Fprint(w, race.RenderWitnessFunc(eventAt, locName, r.Witness))
		}
	}
	if rep.BudgetExhausted {
		fmt.Fprintln(w, "note: global budget exhausted; results are sound but may be incomplete")
	}
	if rep.DegradedWindows > 0 {
		fmt.Fprintf(w, "note: %d window(s) analysed in degraded mode; races shown are sound, but SMT-only races in those windows may be missing\n",
			rep.DegradedWindows)
	}
	for _, f := range rep.WindowFailures {
		fmt.Fprintf(w, "note: window %d (offset %d, %d events) failed: %s\n",
			f.Window, f.Offset, f.Events, f.PanicValue)
	}
}

// foundExit maps a finding count to the command's exit status.
func foundExit(findings int) int {
	if findings > 0 {
		return 1
	}
	return 0
}

func emitJSON(w io.Writer, rep any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// printTelemetry renders the -stats block: phase timings first, then the
// candidate funnel, then the solver-stack counters.
func printTelemetry(w io.Writer, t *rvpredict.Telemetry) {
	if t == nil {
		return
	}
	ms := func(ns int64) string {
		return time.Duration(ns).Round(10 * time.Microsecond).String()
	}
	fmt.Fprintln(w, "--- stats ---")
	fmt.Fprintf(w, "phases: scan %s, enumerate %s, mhb %s, quick-check %s, encode %s, solve %s, witness %s\n",
		ms(t.Phases.TraceScan), ms(t.Phases.Enumerate), ms(t.Phases.MHB),
		ms(t.Phases.QuickCheck), ms(t.Phases.Encode), ms(t.Phases.Solve),
		ms(t.Phases.Witness))
	o := t.Outcomes
	fmt.Fprintf(w, "candidates: %d enumerated, %d quick-check filtered, %d MHB filtered, %d dedup hits\n",
		o.Enumerated, o.QuickCheckFiltered, o.MHBFiltered, o.SigDedupHits)
	fmt.Fprintf(w, "queries: %d solved — %d sat, %d unsat, %d timeout, %d conflict-budget, %d cancelled\n",
		o.Solved, o.Sat, o.Unsat, o.Timeout, o.ConflictBudget, o.Cancelled)
	if o.RetriesScheduled > 0 || o.BudgetExhausted > 0 || o.WindowFailures > 0 {
		fmt.Fprintf(w, "resilience: %d retries scheduled, %d solved on retry (%d sat), %d budget-exhausted, %d window failures\n",
			o.RetriesScheduled, o.RetriesSolved, o.RetrySat, o.BudgetExhausted, o.WindowFailures)
	}
	sc := t.Solver
	fmt.Fprintf(w, "sat: %d decisions, %d propagations, %d conflicts, %d restarts, %d learned\n",
		sc.Decisions, sc.Propagations, sc.Conflicts, sc.Restarts, sc.Learned)
	fmt.Fprintf(w, "idl: %d atom asserts, %d negative cycles, %d repair steps (%d theory props, %d theory conflicts)\n",
		sc.IDLAsserts, sc.IDLNegativeCycles, sc.IDLRepairSteps, sc.TheoryProps, sc.TheoryConflicts)
	fmt.Fprintf(w, "encode: %d interned atoms, %d tseitin vars, %d tseitin clauses; %d bool vars, %d clauses, %d int vars across %d solver(s)\n",
		sc.InternedAtoms, sc.TseitinVars, sc.TseitinClauses, sc.BoolVars, sc.Clauses, sc.IntVars, sc.Solvers)
	if ps := t.PairSched; ps.Groups > 0 {
		fmt.Fprintf(w, "pair scheduler: %d groups, %d workers, %d replicas, %d rollbacks, queue wait %s\n",
			ps.Groups, ps.Workers, ps.Replicas, ps.Rollbacks, ms(ps.QueueWaitNS))
	}
	if tg := t.Triage; tg.Confirmed+tg.WCPConfirmed+tg.SyncPConfirmed+tg.CPConfirmed+tg.Dispatched > 0 {
		fmt.Fprintf(w, "triage: %d confirmed (%d shb, %d wcp, %d syncp, %d cp), %d dispatched to smt, fast path %s\n",
			tg.Confirmed+tg.WCPConfirmed+tg.SyncPConfirmed+tg.CPConfirmed,
			tg.Confirmed, tg.WCPConfirmed, tg.SyncPConfirmed, tg.CPConfirmed,
			tg.Dispatched, ms(tg.FastPathNS))
	}
	fmt.Fprintf(w, "windows: %d\n", t.WindowCount)
}

// progressTracer prints window lifecycle lines — and noteworthy query
// verdicts (findings and solver aborts) — to stderr as analysis runs.
// Methods may be called concurrently when -parallel > 1.
type progressTracer struct {
	mu    sync.Mutex
	w     io.Writer
	start time.Time
}

func (p *progressTracer) stamp() string {
	return time.Since(p.start).Round(time.Millisecond).String()
}

func (p *progressTracer) WindowStart(index, events int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(p.w, "[%s] window %d: %d events\n", p.stamp(), index, events)
}

func (p *progressTracer) WindowDone(index, findings int, elapsed time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(p.w, "[%s] window %d done: %d finding(s) in %v\n",
		p.stamp(), index, findings, elapsed.Round(time.Millisecond))
}

func (p *progressTracer) QuerySolved(index, a, b int, outcome rvpredict.Outcome, elapsed time.Duration) {
	if outcome != rvpredict.OutcomeSat && !outcome.Aborted() {
		return // unsat is the common, quiet case
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(p.w, "[%s] window %d: events %d,%d → %s (%v)\n",
		p.stamp(), index, a, b, outcome, elapsed.Round(time.Millisecond))
}
