// Command rvpredict runs predictive race detection on a recorded trace
// file (see cmd/tracegen and cmd/minirun for producers).
//
// Usage:
//
//	rvpredict [flags] trace.rvpt
//
// The default algorithm is the paper's maximal control-flow-aware
// technique; -algo selects a baseline for comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/race"
	"repro/internal/tracefile"
	"repro/rvpredict"
)

func main() {
	var (
		algoName  = flag.String("algo", "rv", "algorithm: rv, said, cp, hb or qc")
		window    = flag.Int("window", 10000, "window size in events (0 = whole trace)")
		timeout   = flag.Duration("timeout", 60*time.Second, "per-pair solver timeout")
		witness   = flag.Bool("witness", false, "print a witness schedule per race")
		dump      = flag.Bool("dump", false, "dump the trace instead of analysing it")
		deadlocks = flag.Bool("deadlock", false, "predict lock-inversion deadlocks instead of races")
		atomicity = flag.Bool("atomicity", false, "predict atomicity violations instead of races")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rvpredict [flags] trace.rvpt")
		flag.PrintDefaults()
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := tracefile.Decode(f)
	if err != nil {
		fatal(err)
	}

	if *dump {
		if err := tracefile.Dump(os.Stdout, tr); err != nil {
			fatal(err)
		}
		return
	}

	if *deadlocks {
		ws := *window
		if ws == 0 {
			ws = -1
		}
		rep := rvpredict.DetectDeadlocks(tr, rvpredict.Options{
			WindowSize:   ws,
			SolveTimeout: *timeout,
			Witness:      *witness,
		})
		fmt.Printf("deadlocks: %d (of %d candidate inversions) in %v\n",
			len(rep.Deadlocks), rep.Candidates, rep.Elapsed.Round(time.Millisecond))
		for i, d := range rep.Deadlocks {
			fmt.Printf("  #%d %s\n", i+1, d.Description)
			if *witness && d.Witness != nil {
				fmt.Printf("     witness prefix:")
				for _, idx := range d.Witness {
					fmt.Printf(" %d", idx)
				}
				fmt.Println()
			}
		}
		return
	}

	if *atomicity {
		ws := *window
		if ws == 0 {
			ws = -1
		}
		rep := rvpredict.DetectAtomicityViolations(tr, rvpredict.Options{
			WindowSize:   ws,
			SolveTimeout: *timeout,
			Witness:      *witness,
		})
		fmt.Printf("atomicity violations: %d (of %d candidates) in %v\n",
			len(rep.Violations), rep.Candidates, rep.Elapsed.Round(time.Millisecond))
		for i, v := range rep.Violations {
			fmt.Printf("  #%d %s\n", i+1, v.Description)
		}
		return
	}

	var algo rvpredict.Algorithm
	switch strings.ToLower(*algoName) {
	case "rv":
		algo = rvpredict.MaximalCF
	case "said":
		algo = rvpredict.SaidEtAl
	case "cp":
		algo = rvpredict.CausallyPrecedes
	case "hb":
		algo = rvpredict.HappensBefore
	case "qc":
		algo = rvpredict.QuickCheck
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algoName))
	}

	ws := *window
	if ws == 0 {
		ws = -1 // whole trace
	}
	rep := rvpredict.Detect(tr, rvpredict.Options{
		Algorithm:    algo,
		WindowSize:   ws,
		SolveTimeout: *timeout,
		Witness:      *witness,
	})

	s := rep.Stats
	fmt.Printf("trace: %d events, %d threads, %d r/w, %d sync, %d branch\n",
		s.Events, s.Threads, s.Accesses, s.Syncs, s.Branches)
	fmt.Printf("%s: %d race(s) in %v (%d pairs checked, %d windows, %d timeouts)\n",
		rep.Algorithm, len(rep.Races), rep.Elapsed.Round(time.Millisecond),
		rep.PairsChecked, rep.Windows, rep.SolverTimeouts)
	for i, r := range rep.Races {
		fmt.Printf("  #%d %s\n", i+1, r.Description)
		if *witness && r.Witness != nil {
			fmt.Print(race.RenderWitness(tr, r.Witness))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rvpredict:", err)
	os.Exit(1)
}
