package main

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/journal"
	"repro/rvpredict"
	"repro/trace"
)

// TestHelperProcess is not a test: it is the CLI re-executed as a child
// process so the crash fault points can genuinely kill it. The arguments
// after "--" are passed to run verbatim.
func TestHelperProcess(t *testing.T) {
	if os.Getenv("RVP_HELPER") != "1" {
		return
	}
	args := os.Args
	for i, a := range args {
		if a == "--" {
			args = args[i+1:]
			break
		}
	}
	os.Exit(run(args, os.Stdout, os.Stderr))
}

// helperRun re-execs the test binary as the CLI with the given fault
// script and returns its exit code.
func helperRun(t *testing.T, faults string, args ...string) int {
	t.Helper()
	cmd := exec.Command(os.Args[0], append([]string{"-test.run=^TestHelperProcess$", "--"}, args...)...)
	cmd.Env = append(os.Environ(), "RVP_HELPER=1", "RVPREDICT_FAULTS="+faults)
	err := cmd.Run()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("re-exec failed to start: %v", err)
	}
	return ee.ExitCode()
}

// crashFixture is a four-window racy trace (two races per 8-event
// window), so a crash mid-journal loses some windows and keeps others.
func crashFixture() *trace.Trace {
	b := trace.NewBuilder()
	for i := 0; i < 4; i++ {
		l := trace.Loc(100 * (i + 1))
		x := trace.Addr(10 + 4*i)
		y := x + 1
		b.At(l+1).Write(1, x, 1)
		b.At(l+2).ReadV(2, x, 1)
		b.At(l+3).Write(1, y, 2)
		b.At(l+4).Write(2, y, 2)
		b.At(l + 5).Branch(1)
		b.At(l + 6).Branch(2)
		b.At(l + 5).Branch(1)
		b.At(l + 6).Branch(2)
	}
	return b.Trace()
}

// TestCrashMidJournalThenResume is the end-to-end crash-recovery proof: a
// child process is killed while appending window 2's record (leaving a
// torn tail), then the same analysis is resumed in-process and its JSON
// report must match a never-crashed run's.
func TestCrashMidJournalThenResume(t *testing.T) {
	tracePath := writeTrace(t, crashFixture())
	jp := filepath.Join(t.TempDir(), "run.journal")
	base := []string{"-json", "-window", "8", "-witness"}

	runJSON := func(args ...string) rvpredict.Report {
		t.Helper()
		var out, errb strings.Builder
		if got := run(args, &out, &errb); got != 1 {
			t.Fatalf("exit = %d, want 1 (stderr: %s)", got, errb.String())
		}
		var rep rvpredict.Report
		if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
			t.Fatalf("report does not parse: %v", err)
		}
		return rep
	}
	clean := runJSON(append(append([]string{}, base...), tracePath)...)

	// Crash the child on its third journal append, mid-frame.
	code := helperRun(t, "journal_append:2=crash-torn",
		append(append([]string{}, base...), "-journal", jp, tracePath)...)
	if code != faultinject.CrashExitCode {
		t.Fatalf("crashed child exit = %d, want %d", code, faultinject.CrashExitCode)
	}
	_, info, err := journal.Inspect(jp)
	if err != nil {
		t.Fatalf("inspecting the crashed journal: %v", err)
	}
	if len(info.Outcomes) != 2 || !info.TornTail {
		t.Fatalf("crashed journal holds %d outcomes (torn=%t), want 2 with a torn tail",
			len(info.Outcomes), info.TornTail)
	}

	resumed := runJSON(append(append([]string{}, base...), "-journal", jp, "-resume", tracePath)...)
	if resumed.Telemetry == nil || resumed.Telemetry.Journal.WindowsReplayed != 2 {
		t.Fatalf("resumed run replayed %+v windows, want 2", resumed.Telemetry)
	}
	if resumed.Telemetry.Journal.TornTailTruncated != 1 {
		t.Errorf("torn_tail_truncated = %d, want 1", resumed.Telemetry.Journal.TornTailTruncated)
	}
	// The two journaled windows' races come back marked Replayed — an
	// operational flag, normalised away before the identity comparison.
	var replayed int
	for i := range resumed.Races {
		if resumed.Races[i].Provenance.Replayed {
			replayed++
			resumed.Races[i].Provenance.Replayed = false
		}
	}
	if replayed != 4 {
		t.Errorf("resumed report carries %d replayed races, want 4 (two per journaled window)", replayed)
	}
	clean.Telemetry, resumed.Telemetry = nil, nil
	clean.Elapsed, resumed.Elapsed = 0, 0
	if !reflect.DeepEqual(resumed, clean) {
		t.Errorf("resumed report differs from the uninterrupted run:\n got %+v\nwant %+v", resumed, clean)
	}
}

// TestReportFlushCrashLeavesNoPartialReport: a crash in the middle of (or
// just after) writing the -out report must leave the destination path
// absent — never half a JSON document.
func TestReportFlushCrashLeavesNoPartialReport(t *testing.T) {
	tracePath := writeTrace(t, crashFixture())
	for _, fault := range []string{"crash-torn", "crash"} {
		t.Run(fault, func(t *testing.T) {
			out := filepath.Join(t.TempDir(), "report.json")
			code := helperRun(t, "report_flush:0="+fault,
				"-json", "-window", "8", "-out", out, tracePath)
			if code != faultinject.CrashExitCode {
				t.Fatalf("exit = %d, want %d", code, faultinject.CrashExitCode)
			}
			if _, err := os.Stat(out); !errors.Is(err, os.ErrNotExist) {
				t.Errorf("report path exists after a mid-flush crash (stat err: %v)", err)
			}
		})
	}
}

// TestOutFlagWritesAtomically: the happy path of -out produces a complete
// report and cleans up its temp file.
func TestOutFlagWritesAtomically(t *testing.T) {
	tracePath := writeTrace(t, crashFixture())
	dir := t.TempDir()
	out := filepath.Join(dir, "report.json")
	var sb, errb strings.Builder
	if got := run([]string{"-json", "-window", "8", "-out", out, tracePath}, &sb, &errb); got != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", got, errb.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("report missing: %v", err)
	}
	var rep rvpredict.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("-out report does not parse: %v", err)
	}
	if len(rep.Races) == 0 {
		t.Error("report has no races")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file %q left behind", e.Name())
		}
	}
}
