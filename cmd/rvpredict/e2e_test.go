package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/rvpredict"
)

// TestIntrospectionE2E drives the whole CLI with -http and -trace-out on
// a fixture trace: the introspection banner must name the bound address,
// the JSON report must carry provenance on every race, and the -trace-out
// file must be valid Chrome trace-event JSON covering the run, window and
// solve spans.
func TestIntrospectionE2E(t *testing.T) {
	tracePath := writeTrace(t, crashFixture())
	traceOut := filepath.Join(t.TempDir(), "spans.json")
	var stdout, stderr strings.Builder
	code := run([]string{"-json", "-window", "8", "-witness",
		"-http", "127.0.0.1:0", "-trace-out", traceOut, tracePath},
		&stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	banner := regexp.MustCompile(`introspection on http://[^\s]+`)
	if !banner.MatchString(stderr.String()) {
		t.Errorf("stderr lacks the introspection banner: %q", stderr.String())
	}

	var rep rvpredict.Report
	if err := json.Unmarshal([]byte(stdout.String()), &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if len(rep.Races) == 0 {
		t.Fatal("fixture produced no races")
	}
	for _, r := range rep.Races {
		if r.Provenance.Tier == "" {
			t.Errorf("race %d,%d has no provenance tier", r.First, r.Second)
		}
		if r.Provenance.WitnessLen != len(r.Witness) {
			t.Errorf("race %d,%d provenance witness_len = %d, want %d",
				r.First, r.Second, r.Provenance.WitnessLen, len(r.Witness))
		}
	}
	if rep.Build.Version == "" || rep.Build.Revision == "" {
		t.Errorf("report build info incomplete: %+v", rep.Build)
	}

	data, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatalf("-trace-out file missing: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("-trace-out is not valid trace-event JSON: %v", err)
	}
	var sawRun, sawWindow, sawGroup bool
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			if ev.TS < 0 || ev.Dur < 0 {
				t.Errorf("span %q has negative ts/dur", ev.Name)
			}
		case "M":
			if ev.Name != "thread_name" {
				t.Errorf("metadata event %q, want thread_name", ev.Name)
			}
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
		switch {
		case ev.Name == "run":
			sawRun = true
		case ev.Name == "window":
			sawWindow = true
		case strings.HasPrefix(ev.Name, "group "):
			sawGroup = true
		}
	}
	if !sawRun || !sawWindow || !sawGroup {
		t.Errorf("timeline lacks expected spans (run=%t window=%t group=%t) among %d events",
			sawRun, sawWindow, sawGroup, len(doc.TraceEvents))
	}
}

// scrapeTracer scrapes /metrics and /races from inside the final
// window's WindowDone callback — still strictly inside the run, with
// every window merged — so the live-scrape assertions are deterministic
// rather than racing the run's end.
type scrapeTracer struct {
	windows int
	seen    int
	addr    string
	metrics string
	races   string
	err     error
}

func (s *scrapeTracer) WindowStart(int, int) {}
func (s *scrapeTracer) QuerySolved(int, int, int, rvpredict.Outcome, time.Duration) {
}

func (s *scrapeTracer) WindowDone(int, int, time.Duration) {
	s.seen++
	if s.seen != s.windows {
		return
	}
	get := func(path string) string {
		resp, err := http.Get("http://" + s.addr + path)
		if err != nil {
			s.err = err
			return ""
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			s.err = err
			return ""
		}
		if resp.StatusCode != http.StatusOK {
			s.err = fmt.Errorf("GET %s: %s", path, resp.Status)
		}
		return string(body)
	}
	s.metrics = get("/metrics")
	s.races = get("/races")
}

// TestMetricsFunnelInvariantLive scrapes /metrics while the run is still
// inside Run (at the last window's completion hook) and validates the
// candidate-funnel identity the dashboard depends on:
//
//	enumerated = quick_check_filtered + signature_dedup + mhb_filtered
//	           + triage_confirmed + triage_wcp_confirmed
//	           + triage_syncp_confirmed + triage_cp_confirmed + dispatched
func TestMetricsFunnelInvariantLive(t *testing.T) {
	tr := crashFixture()
	sc := &scrapeTracer{windows: 4}
	opt := rvpredict.Options{
		WindowSize: 8,
		Witness:    true,
		DebugAddr:  "127.0.0.1:0",
		OnDebugAddr: func(addr string) {
			sc.addr = addr
		},
		Tracer: sc,
	}
	rep, err := rvpredict.Run(nil, tr, opt)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if sc.err != nil {
		t.Fatalf("live scrape failed: %v", sc.err)
	}
	if sc.metrics == "" {
		t.Fatal("no /metrics scrape happened")
	}

	v := func(name string) float64 {
		re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` ([0-9eE.+-]+)$`)
		m := re.FindStringSubmatch(sc.metrics)
		if m == nil {
			t.Fatalf("metric %s missing from scrape:\n%s", name, sc.metrics)
		}
		f, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			t.Fatalf("metric %s: %v", name, err)
		}
		return f
	}
	enumerated := v("rvpredict_candidates_enumerated_total")
	sum := v("rvpredict_quick_check_filtered_total") +
		v("rvpredict_signature_dedup_total") +
		v("rvpredict_mhb_filtered_total") +
		v("rvpredict_triage_confirmed_total") +
		v("rvpredict_triage_wcp_confirmed_total") +
		v("rvpredict_triage_syncp_confirmed_total") +
		v("rvpredict_triage_cp_confirmed_total") +
		v("rvpredict_triage_dispatched_total")
	if enumerated == 0 {
		t.Error("no candidates enumerated by the last window")
	}
	if enumerated != sum {
		t.Errorf("funnel identity violated: enumerated %v != classified %v\n%s",
			enumerated, sum, sc.metrics)
	}
	if got := v("rvpredict_build_info{version=\"" + rep.Build.Version + "\",revision=\"" + rep.Build.Revision + "\"}"); got != 1 {
		t.Errorf("build_info gauge = %v, want 1", got)
	}

	// The /races feed runs after each window's WindowDone callback, so at
	// the last window's callback the first three windows' races are
	// visible, provenance included.
	var live struct {
		Races []struct {
			A          int                  `json:"a"`
			B          int                  `json:"b"`
			Provenance rvpredict.Provenance `json:"provenance"`
		} `json:"races"`
	}
	if err := json.Unmarshal([]byte(sc.races), &live); err != nil {
		t.Fatalf("/races does not parse: %v\n%s", err, sc.races)
	}
	if len(live.Races) < len(rep.Races)-2 || len(live.Races) > len(rep.Races) {
		t.Errorf("/races held %d races at the last window, want within 2 of the final %d",
			len(live.Races), len(rep.Races))
	}
	for _, r := range live.Races {
		if r.Provenance.Tier == "" {
			t.Errorf("live race %d,%d has no provenance tier", r.A, r.B)
		}
	}
}
