// Command minirun executes a minilang program, optionally recording its
// trace and running race prediction on it — the end-to-end pipeline of the
// paper on a single source file.
//
// Usage:
//
//	minirun [flags] program.ml
//
// Example:
//
//	minirun -sched seq -detect rv -witness figure1.ml
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/race"
	"repro/internal/tracefile"
	"repro/minilang"
	"repro/rvpredict"
)

func main() {
	var (
		sched    = flag.String("sched", "rr", "scheduler: rr, seq or random")
		quantum  = flag.Int("quantum", 1, "round-robin quantum")
		seed     = flag.Int64("seed", 1, "random scheduler seed")
		maxSteps = flag.Int("maxsteps", 1<<20, "interpreter step budget")
		traceOut = flag.String("trace", "", "write the trace to this file")
		format   = flag.Bool("fmt", false, "print the formatted program and exit")
		detect   = flag.String("detect", "", "run detection: rv, said, cp, hb, qc or all")
		witness  = flag.Bool("witness", false, "print witnesses for detected races")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minirun [flags] program.ml")
		flag.PrintDefaults()
		os.Exit(2)
	}

	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := minilang.Compile(string(src))
	if err != nil {
		fatal(fmt.Errorf("%s: %w", flag.Arg(0), err))
	}

	if *format {
		fmt.Print(minilang.Format(prog))
		return
	}

	var scheduler minilang.Scheduler
	switch *sched {
	case "rr":
		scheduler = &minilang.RoundRobin{Quantum: *quantum}
	case "seq":
		scheduler = minilang.Sequential{}
	case "random":
		scheduler = &minilang.Random{Seed: *seed}
	default:
		fatal(fmt.Errorf("unknown scheduler %q", *sched))
	}

	tr, err := prog.Run(minilang.RunOptions{
		Scheduler: scheduler,
		MaxSteps:  *maxSteps,
		Out:       os.Stdout,
	})
	if err != nil {
		fatal(err)
	}
	s := tr.ComputeStats()
	fmt.Printf("executed: %d events, %d threads, %d r/w, %d sync, %d branch\n",
		s.Events, s.Threads, s.Accesses, s.Syncs, s.Branches)

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := tracefile.Encode(f, tr); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("trace written to", *traceOut)
	}

	if *detect == "" {
		return
	}
	algos := map[string]rvpredict.Algorithm{
		"rv": rvpredict.MaximalCF, "said": rvpredict.SaidEtAl,
		"cp": rvpredict.CausallyPrecedes, "hb": rvpredict.HappensBefore,
		"qc": rvpredict.QuickCheck,
	}
	var run []rvpredict.Algorithm
	if *detect == "all" {
		run = []rvpredict.Algorithm{rvpredict.MaximalCF, rvpredict.SaidEtAl,
			rvpredict.CausallyPrecedes, rvpredict.HappensBefore, rvpredict.QuickCheck}
	} else {
		a, ok := algos[strings.ToLower(*detect)]
		if !ok {
			fatal(fmt.Errorf("unknown algorithm %q", *detect))
		}
		run = []rvpredict.Algorithm{a}
	}
	for _, a := range run {
		rep := rvpredict.Detect(tr, rvpredict.Options{Algorithm: a, Witness: *witness})
		fmt.Printf("%-4s: %d race(s) in %v\n", rep.Algorithm, len(rep.Races),
			rep.Elapsed.Round(time.Millisecond))
		for _, r := range rep.Races {
			fmt.Printf("      %s\n", r.Description)
			if *witness && r.Witness != nil {
				fmt.Print(race.RenderWitness(tr, r.Witness))
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minirun:", err)
	os.Exit(1)
}
