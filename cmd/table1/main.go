// Command table1 regenerates the paper's Table 1: per benchmark, the trace
// metrics (#Thrd, #Event, #RW, #Sync, #Br), the number of potential races
// passing the quick check (QC), the real races found by the four sound
// techniques (RV, Said, CP, HB), and each technique's detection time.
//
// Every row is a synthetic model of the paper's benchmark with planted
// race structure (see internal/workloads and EXPERIMENTS.md); the final
// column group compares the measured counts against the row's planted
// ground truth.
//
// Usage:
//
//	table1 [-scale N] [-rows regexp] [-timeout d] [-skip-said] [-csv | -json]
//
// -json emits one JSON record per row (newline-delimited), each carrying
// the trace metrics, every technique's counts and timings, the planted
// ground truth, and the RV run's telemetry snapshot.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"time"

	"repro/internal/core"
	"repro/internal/cp"
	"repro/internal/hb"
	"repro/internal/lockset"
	"repro/internal/race"
	"repro/internal/said"
	"repro/internal/telemetry"
	"repro/internal/workloads"
	"repro/trace"
)

// techResult is one technique's measured outcome on one row.
type techResult struct {
	Races     int   `json:"races"`
	Pairs     int   `json:"pairs_checked"`
	Windows   int   `json:"windows"`
	ElapsedNS int64 `json:"elapsed_ns"`
}

// rowRecord is one -json output line: everything a Table 1 row carries,
// plus the RV run's telemetry snapshot.
type rowRecord struct {
	Program string           `json:"program"`
	Stats   trace.Stats      `json:"stats"`
	QC      techResult       `json:"qc"`
	RV      techResult       `json:"rv"`
	Said    *techResult      `json:"said,omitempty"`
	CP      techResult       `json:"cp"`
	HB      techResult       `json:"hb"`
	Planted workloads.Expect `json:"planted"`
	// Triage and Journal lift the RV telemetry's tier-confirmation and
	// journal counters to the top level, so scripts/bench_compare.py can
	// diff them between snapshots without digging through the full
	// telemetry tree.
	Triage    *telemetry.TriageCounters  `json:"triage,omitempty"`
	Journal   *telemetry.JournalCounters `json:"journal,omitempty"`
	Telemetry *telemetry.Metrics         `json:"telemetry"`
}

func tech(r race.Result) techResult {
	return techResult{
		Races:     r.Count(),
		Pairs:     r.COPsChecked,
		Windows:   r.Windows,
		ElapsedNS: int64(r.Elapsed),
	}
}

func main() {
	var (
		scale    = flag.Int("scale", 1, "divide every row's event count by N")
		rowsRe   = flag.String("rows", "", "only rows matching this regexp")
		timeout  = flag.Duration("timeout", 60*time.Second, "per-pair solver timeout")
		skipSaid = flag.Bool("skip-said", false, "skip the Said baseline (slowest column)")
		csv      = flag.Bool("csv", false, "emit CSV instead of the aligned table")
		jsonOut  = flag.Bool("json", false, "emit one JSON record per row (with RV telemetry) instead of the table")
	)
	flag.Parse()

	var filter *regexp.Regexp
	if *rowsRe != "" {
		var err error
		filter, err = regexp.Compile(*rowsRe)
		if err != nil {
			fmt.Fprintln(os.Stderr, "table1:", err)
			os.Exit(2)
		}
	}

	if *csv && !*jsonOut {
		fmt.Println("program,threads,events,rw,sync,branch,qc,rv,said,cp,hb," +
			"t_rv_ms,t_said_ms,t_cp_ms,t_hb_ms,planted_qc,planted_rv,planted_said,planted_cp,planted_hb")
	} else if !*jsonOut {
		fmt.Printf("%-11s %5s %8s %8s %7s %7s | %5s %5s %5s %5s %5s | %9s %9s %9s %9s | %s\n",
			"Program", "#Thrd", "#Event", "#RW", "#Sync", "#Br",
			"QC", "RV", "Said", "CP", "HB",
			"t(RV)", "t(Said)", "t(CP)", "t(HB)", "planted QC/RV/Said/CP/HB")
	}

	enc := json.NewEncoder(os.Stdout)
	run := func(name string, tr *trace.Trace, window int, want workloads.Expect) {
		if filter != nil && !filter.MatchString(name) {
			return
		}
		st := tr.ComputeStats()

		var col *telemetry.Collector
		if *jsonOut {
			col = telemetry.NewCollector()
		}
		qc := lockset.New(lockset.Options{WindowSize: window}).Detect(tr)
		rv := core.New(core.Options{WindowSize: window, SolveTimeout: *timeout, Telemetry: col}).Detect(tr)
		var sd race.Result
		sdTime := "-"
		if !*skipSaid {
			sd = said.New(said.Options{WindowSize: window, SolveTimeout: *timeout}).Detect(tr)
			sdTime = fmtDur(sd.Elapsed)
		}
		cpr := cp.New(cp.Options{WindowSize: window}).Detect(tr)
		hbr := hb.New(hb.Options{WindowSize: window}).Detect(tr)

		if *jsonOut {
			rec := rowRecord{
				Program:   name,
				Stats:     st,
				QC:        tech(qc),
				RV:        tech(rv),
				CP:        tech(cpr),
				HB:        tech(hbr),
				Planted:   want,
				Telemetry: col.Snapshot(),
			}
			if rec.Telemetry != nil {
				rec.Triage = &rec.Telemetry.Triage
				rec.Journal = &rec.Telemetry.Journal
			}
			if !*skipSaid {
				s := tech(sd)
				rec.Said = &s
			}
			if err := enc.Encode(rec); err != nil {
				fmt.Fprintln(os.Stderr, "table1:", err)
				os.Exit(2)
			}
			return
		}
		if *csv {
			fmt.Printf("%s,%d,%d,%d,%d,%d,%d,%d,%s,%d,%d,%d,%s,%d,%d,%d,%d,%d,%d,%d\n",
				name, st.Threads, st.Events, st.Accesses, st.Syncs, st.Branches,
				qc.Count(), rv.Count(), countOrDash(!*skipSaid, sd.Count()),
				cpr.Count(), hbr.Count(),
				rv.Elapsed.Milliseconds(), csvDur(!*skipSaid, sd.Elapsed),
				cpr.Elapsed.Milliseconds(), hbr.Elapsed.Milliseconds(),
				want.QC, want.RV, want.Said, want.CP, want.HB)
			return
		}
		fmt.Printf("%-11s %5d %8d %8d %7d %7d | %5d %5d %5s %5d %5d | %9s %9s %9s %9s | %d/%d/%d/%d/%d\n",
			name, st.Threads, st.Events, st.Accesses, st.Syncs, st.Branches,
			qc.Count(), rv.Count(), countOrDash(!*skipSaid, sd.Count()),
			cpr.Count(), hbr.Count(),
			fmtDur(rv.Elapsed), sdTime, fmtDur(cpr.Elapsed), fmtDur(hbr.Elapsed),
			want.QC, want.RV, want.Said, want.CP, want.HB)
	}

	extr, exWant := workloads.Example()
	run("example", extr, 10000, exWant)
	for _, spec := range workloads.Rows() {
		if *scale > 1 {
			spec.Events /= *scale
		}
		tr, want := workloads.Build(spec)
		run(spec.Name, tr, spec.Window, want)
	}
}

func csvDur(have bool, d time.Duration) string {
	if !have {
		return "-"
	}
	return fmt.Sprintf("%d", d.Milliseconds())
}

func countOrDash(have bool, n int) string {
	if !have {
		return "-"
	}
	return fmt.Sprintf("%d", n)
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.1fs", d.Seconds())
	default:
		return fmt.Sprintf("%dms", d.Milliseconds())
	}
}
